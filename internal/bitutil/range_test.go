package bitutil

import (
	"math/rand"
	"testing"
)

// refAnyInRange is the scalar reference for AnyInRange.
func refAnyInRange(b *Bitset, start, end int) bool {
	for i := start; i < end; i++ {
		if b.Test(i) {
			return true
		}
	}
	return false
}

func refCountInRange(b *Bitset, start, end int) int {
	c := 0
	for i := start; i < end; i++ {
		if b.Test(i) {
			c++
		}
	}
	return c
}

func randomBitset(rng *rand.Rand, n int, density float64) *Bitset {
	b := NewBitset(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func TestRangeKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200, 1000} {
		for _, density := range []float64{0, 0.01, 0.5, 1} {
			b := randomBitset(rng, n, density)
			for trial := 0; trial < 50; trial++ {
				start := rng.Intn(n+2) - 1
				end := start + rng.Intn(n+2)
				if got, want := b.AnyInRange(start, end), refAnyInRange(b, start, end); got != want {
					t.Fatalf("AnyInRange(%d, %d) n=%d: got %v want %v", start, end, n, got, want)
				}
				if got, want := b.CountInRange(start, end), refCountInRange(b, start, end); got != want {
					t.Fatalf("CountInRange(%d, %d) n=%d: got %d want %d", start, end, n, got, want)
				}
				clr := b.Clone()
				clr.ClearRange(start, end)
				for i := 0; i < n; i++ {
					want := b.Test(i) && (i < start || i >= end)
					if clr.Test(i) != want {
						t.Fatalf("ClearRange(%d, %d) n=%d: bit %d got %v want %v", start, end, n, i, clr.Test(i), want)
					}
				}
			}
		}
	}
}

func TestNextSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 64, 65, 300} {
		b := randomBitset(rng, n, 0.1)
		want := b.Slice()
		var got []int
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: NextSet walked %d bits, Slice has %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: NextSet bit %d = %d, want %d", n, i, got[i], want[i])
			}
		}
		if b.NextSet(-5) != b.NextSet(0) {
			t.Fatalf("NextSet should clamp negative indexes")
		}
		if b.NextSet(n) != -1 || b.NextSet(n+10) != -1 {
			t.Fatalf("NextSet past the end must return -1")
		}
	}
}

func TestFilterRange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 64, 129, 500} {
		for trial := 0; trial < 30; trial++ {
			b := randomBitset(rng, n, 0.5)
			start := rng.Intn(n + 1)
			end := start + rng.Intn(n+1-start)
			orig := b.Clone()
			keepEven := func(i int) bool { return i%2 == 0 }
			b.FilterRange(start, end, keepEven)
			for i := 0; i < n; i++ {
				want := orig.Test(i)
				if i >= start && i < end && !keepEven(i) {
					want = false
				}
				if b.Test(i) != want {
					t.Fatalf("FilterRange(%d, %d) n=%d: bit %d got %v want %v", start, end, n, i, b.Test(i), want)
				}
			}
		}
	}
	// The callback must only see set bits inside the range.
	b := NewBitset(128)
	b.Set(3)
	b.Set(70)
	b.Set(127)
	var seen []int
	b.FilterRange(4, 127, func(i int) bool {
		seen = append(seen, i)
		return true
	})
	if len(seen) != 1 || seen[0] != 70 {
		t.Fatalf("FilterRange visited %v, want [70]", seen)
	}
}

func TestFilterRangeEmptyAndClamped(t *testing.T) {
	b := NewBitset(64)
	b.SetAll()
	b.FilterRange(10, 10, func(int) bool { return false })
	if b.Count() != 64 {
		t.Fatal("empty range must not change the set")
	}
	b.FilterRange(-10, 1000, func(int) bool { return false })
	if b.Count() != 0 {
		t.Fatal("clamped full range must clear everything")
	}
}
