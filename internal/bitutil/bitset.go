// Package bitutil provides bit-level primitives shared by the LogBlock
// format and the query engine: fixed-size bitsets used as row-id sets and
// null masks, and variable-length integer encoding used throughout the
// on-disk format.
package bitutil

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity set of row ids backed by a []uint64.
// The zero value is an empty bitset of capacity 0; use NewBitset to
// allocate capacity up front.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns a bitset able to hold bits [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. Bits outside [0, Len) are ignored.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// SetAll sets every bit in [0, Len).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trimTail zeroes bits at positions >= n in the last word so that
// Count and iteration never observe phantom bits.
func (b *Bitset) trimTail() {
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with other in place. Panics if lengths differ.
func (b *Bitset) And(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitutil: And on bitsets of different length %d != %d", b.n, other.n))
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions b with other in place. Panics if lengths differ.
func (b *Bitset) Or(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitutil: Or on bitsets of different length %d != %d", b.n, other.n))
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot removes every bit of other from b in place.
func (b *Bitset) AndNot(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitutil: AndNot on bitsets of different length %d != %d", b.n, other.n))
	}
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// rangeMasks returns the word index range [wlo, whi] covering bit range
// [start, end) together with the partial-word masks of the first and
// last word. Callers must have clamped start < end into [0, n).
func rangeMasks(start, end int) (wlo, whi int, first, last uint64) {
	wlo, whi = start>>6, (end-1)>>6
	first = ^uint64(0) << uint(start&63)
	last = ^uint64(0) >> uint(63-(end-1)&63)
	return
}

// clampRange narrows [start, end) to [0, n); ok is false when empty.
func (b *Bitset) clampRange(start, end int) (int, int, bool) {
	if start < 0 {
		start = 0
	}
	if end > b.n {
		end = b.n
	}
	return start, end, start < end
}

// AnyInRange reports whether any bit in [start, end) is set, examining
// whole words rather than probing bit by bit.
func (b *Bitset) AnyInRange(start, end int) bool {
	start, end, ok := b.clampRange(start, end)
	if !ok {
		return false
	}
	wlo, whi, first, last := rangeMasks(start, end)
	if wlo == whi {
		return b.words[wlo]&first&last != 0
	}
	if b.words[wlo]&first != 0 || b.words[whi]&last != 0 {
		return true
	}
	for wi := wlo + 1; wi < whi; wi++ {
		if b.words[wi] != 0 {
			return true
		}
	}
	return false
}

// CountInRange returns the number of set bits in [start, end).
func (b *Bitset) CountInRange(start, end int) int {
	start, end, ok := b.clampRange(start, end)
	if !ok {
		return 0
	}
	wlo, whi, first, last := rangeMasks(start, end)
	if wlo == whi {
		return bits.OnesCount64(b.words[wlo] & first & last)
	}
	c := bits.OnesCount64(b.words[wlo]&first) + bits.OnesCount64(b.words[whi]&last)
	for wi := wlo + 1; wi < whi; wi++ {
		c += bits.OnesCount64(b.words[wi])
	}
	return c
}

// ClearRange clears every bit in [start, end).
func (b *Bitset) ClearRange(start, end int) {
	start, end, ok := b.clampRange(start, end)
	if !ok {
		return
	}
	wlo, whi, first, last := rangeMasks(start, end)
	if wlo == whi {
		b.words[wlo] &^= first & last
		return
	}
	b.words[wlo] &^= first
	b.words[whi] &^= last
	for wi := wlo + 1; wi < whi; wi++ {
		b.words[wi] = 0
	}
}

// NextSet returns the index of the first set bit at or after i, or -1
// when no further bit is set.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i >> 6
	w := b.words[wi] >> uint(i&63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// FilterRange clears every set bit i in [start, end) for which keep(i)
// returns false. The scan engine's predicate kernels use it to narrow
// an accumulator word by word: each word is snapshotted, its set bits
// evaluated, and the cleared mask written back in one store.
func (b *Bitset) FilterRange(start, end int, keep func(i int) bool) {
	start, end, ok := b.clampRange(start, end)
	if !ok {
		return
	}
	wlo, whi, first, last := rangeMasks(start, end)
	for wi := wlo; wi <= whi; wi++ {
		mask := ^uint64(0)
		if wi == wlo {
			mask &= first
		}
		if wi == whi {
			mask &= last
		}
		w := b.words[wi] & mask
		if w == 0 {
			continue
		}
		drop := uint64(0)
		base := wi << 6
		for rem := w; rem != 0; rem &= rem - 1 {
			tz := bits.TrailingZeros64(rem)
			if !keep(base + tz) {
				drop |= 1 << uint(tz)
			}
		}
		b.words[wi] &^= drop
	}
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false iteration stops early.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*64 + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the indexes of all set bits in ascending order.
func (b *Bitset) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Bytes serializes the bitset: 8-byte little-endian length in bits
// followed by the packed words.
func (b *Bitset) Bytes() []byte {
	out := make([]byte, 8+len(b.words)*8)
	PutUint64(out[0:8], uint64(b.n))
	for i, w := range b.words {
		PutUint64(out[8+i*8:], w)
	}
	return out
}

// BitsetFromBytes deserializes a bitset produced by Bytes.
func BitsetFromBytes(data []byte) (*Bitset, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("bitutil: bitset truncated: %d bytes", len(data))
	}
	// Bound the bit count by the bytes present before any arithmetic on
	// it: a 64-bit length can wrap int and overflow (n+63)/64 below.
	n64 := Uint64(data[0:8])
	if n64 > uint64(len(data)-8)*8 {
		return nil, fmt.Errorf("bitutil: bitset length %d exceeds %d payload bytes", n64, len(data)-8)
	}
	n := int(n64)
	want := (n + 63) / 64 * 8
	if len(data) < 8+want {
		return nil, fmt.Errorf("bitutil: bitset body truncated: want %d bytes, have %d", want, len(data)-8)
	}
	b := NewBitset(n)
	for i := range b.words {
		b.words[i] = Uint64(data[8+i*8:])
	}
	b.trimTail()
	return b, nil
}
