package broker

import "time"

// This file is the package's clock seam — the single place the broker
// touches the wall clock. The append retry window, its backoff pacing,
// and the hedged-read delay timer all route through these
// indirections, so tests can pin time and the wallclock analyzer can
// enforce that no other file in the package reads the clock.

var (
	// timeNow / timeSleep back the append retry deadline and backoff.
	timeNow   = time.Now
	timeSleep = time.Sleep
)

// newWallTimer backs the hedged-read delay.
func newWallTimer(d time.Duration) *time.Timer { return time.NewTimer(d) }
