package broker

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"logstore/internal/builder"
	"logstore/internal/flow"
	"logstore/internal/meta"
	"logstore/internal/oss"
	"logstore/internal/query"
	"logstore/internal/schema"
	"logstore/internal/worker"
	"logstore/internal/workload"
)

// lockedPool is a WorkerPool whose worker map can be mutated while the
// broker routes (recovery swaps in a rebuilt worker).
type lockedPool struct {
	mu      sync.Mutex
	workers map[flow.WorkerID]*worker.Worker
	owner   map[flow.ShardID]flow.WorkerID
}

func (p *lockedPool) Worker(id flow.WorkerID) (*worker.Worker, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	return w, ok
}

func (p *lockedPool) ShardOwner(s flow.ShardID) (flow.WorkerID, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.owner[s]
	return w, ok
}

func (p *lockedPool) WorkerIDs() []flow.WorkerID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]flow.WorkerID, 0, len(p.workers))
	for id := range p.workers {
		out = append(out, id)
	}
	return out
}

func (p *lockedPool) replace(id flow.WorkerID, w *worker.Worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.workers[id] = w
}

// slowPool delays Worker resolution for one id — a deterministic stand-in
// for a straggling worker, used to force the hedge path.
type slowPool struct {
	WorkerPool
	slow  flow.WorkerID
	delay time.Duration
}

func (p *slowPool) Worker(id flow.WorkerID) (*worker.Worker, bool) {
	if id == p.slow {
		time.Sleep(p.delay)
	}
	return p.WorkerPool.Worker(id)
}

func setupFailover(t *testing.T, cfg Config) (*Broker, *lockedPool, *meta.Manager, oss.Store) {
	t.Helper()
	sch := schema.RequestLogSchema()
	store := oss.NewMemStore()
	catalog := meta.NewManager()
	pool := &lockedPool{
		workers: map[flow.WorkerID]*worker.Worker{},
		owner:   map[flow.ShardID]flow.WorkerID{},
	}
	var shardIDs []flow.ShardID
	sid := flow.ShardID(0)
	for wid := flow.WorkerID(0); wid < 2; wid++ {
		w, err := worker.New(worker.Config{
			ID: wid, Replicas: 1, ArchiveInterval: time.Hour,
			Builder: builder.Config{Table: sch.Name, MaxRowsPerBlock: 50},
		}, sch, store, catalog)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		for j := 0; j < 2; j++ {
			if err := w.AddShard(sid); err != nil {
				t.Fatal(err)
			}
			pool.owner[sid] = wid
			shardIDs = append(shardIDs, sid)
			sid++
		}
		pool.workers[wid] = w
	}
	router := flow.NewRouter(shardIDs, 1)
	collector := flow.NewCollector(time.Second)
	cfg.Exec = query.ExecOptions{DataSkipping: true}
	b, err := New(cfg, sch, router, collector, catalog, pool)
	if err != nil {
		t.Fatal(err)
	}
	return b, pool, catalog, store
}

// archiveTenant0 appends tenant-0 rows and flushes them to OSS so block
// sub-queries have something to read. Returns the row count and the
// worker owning tenant 0's realtime shard.
func archiveTenant0(t *testing.T, b *Broker, pool *lockedPool, n int) (int64, flow.WorkerID) {
	t.Helper()
	g := workload.NewGenerator(workload.GeneratorConfig{Tenants: 1, Theta: 0, Seed: 5, StartMS: 100})
	if err := b.Append(g.Batch(n)); err != nil {
		t.Fatal(err)
	}
	shard := b.router.Route(0)
	owner, _ := pool.ShardOwner(shard)
	for _, w := range pool.workers {
		for _, sid := range w.Shards() {
			if err := w.FlushShard(sid); err != nil {
				t.Fatal(err)
			}
		}
	}
	return int64(n), owner
}

func tenant0Paths(t *testing.T, catalog *meta.Manager) []string {
	t.Helper()
	blocks := catalog.Blocks(0)
	if len(blocks) < 2 {
		t.Fatalf("need several archived blocks, got %d", len(blocks))
	}
	paths := make([]string, len(blocks))
	for i, blk := range blocks {
		paths[i] = blk.Path
	}
	return paths
}

func TestRunBlockSetFailsOverToNextWorker(t *testing.T) {
	b, pool, catalog, _ := setupFailover(t, Config{})
	want, owner := archiveTenant0(t, b, pool, 300)
	paths := tenant0Paths(t, catalog)
	// Crash the non-owner; it still appears first in the candidate list,
	// so the block set must fail over to the surviving worker.
	victim := flow.WorkerID(1 - int(owner))
	w, _ := pool.Worker(victim)
	w.Crash()
	q, err := query.Parse("SELECT COUNT(*) FROM request_log WHERE tenant_id = 0 AND ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.runBlockSet(context.Background(), paths, q, []flow.WorkerID{victim, owner})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("failover count = %d, want %d", res.Count, want)
	}
	failovers, hedges, _ := b.Stats()
	if failovers != 1 || hedges != 0 {
		t.Fatalf("failovers=%d hedges=%d, want 1, 0", failovers, hedges)
	}
}

func TestRunBlockSetAllCandidatesFail(t *testing.T) {
	b, pool, catalog, _ := setupFailover(t, Config{})
	_, _ = archiveTenant0(t, b, pool, 200)
	paths := tenant0Paths(t, catalog)
	for _, w := range pool.workers {
		w.Crash()
	}
	q, err := query.Parse("SELECT COUNT(*) FROM request_log WHERE tenant_id = 0 AND ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.runBlockSet(context.Background(), paths, q, []flow.WorkerID{0, 1}); !errors.Is(err, worker.ErrWorkerDown) {
		t.Fatalf("all-dead block set err = %v, want ErrWorkerDown", err)
	}
	failovers, _, _ := b.Stats()
	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1 (second worker tried once)", failovers)
	}
}

func TestRunBlockSetHedgesSlowWorker(t *testing.T) {
	b, pool, catalog, _ := setupFailover(t, Config{HedgeDelay: 5 * time.Millisecond})
	want, owner := archiveTenant0(t, b, pool, 200)
	paths := tenant0Paths(t, catalog)
	// The preferred worker stalls far beyond the hedge delay; the hedge
	// to the other worker must answer first.
	slow := flow.WorkerID(1 - int(owner))
	b.pool = &slowPool{WorkerPool: pool, slow: slow, delay: 2 * time.Second}
	q, err := query.Parse("SELECT COUNT(*) FROM request_log WHERE tenant_id = 0 AND ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	startedAt := time.Now()
	res, err := b.runBlockSet(context.Background(), paths, q, []flow.WorkerID{slow, owner})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("hedged count = %d, want %d", res.Count, want)
	}
	if elapsed := time.Since(startedAt); elapsed > time.Second {
		t.Fatalf("hedge did not preempt the stalled worker (took %v)", elapsed)
	}
	_, hedges, _ := b.Stats()
	if hedges != 1 {
		t.Fatalf("hedges = %d, want 1", hedges)
	}
}

func TestExecuteSteersAroundDeadWorker(t *testing.T) {
	health := flow.NewHealthTracker(2)
	b, pool, _, _ := setupFailover(t, Config{Health: health})
	want, owner := archiveTenant0(t, b, pool, 300)
	// The non-owner crashes and the tracker notices (missed beats).
	victim := flow.WorkerID(1 - int(owner))
	w, _ := pool.Worker(victim)
	w.Crash()
	health.Beat(owner)
	health.Beat(victim)
	health.Tick()
	health.Tick()
	health.Beat(owner) // owner keeps beating; victim is now dead
	if health.State(victim) != flow.WorkerDead {
		t.Fatal("tracker should consider victim dead")
	}
	// Every block set routes to the survivor up front: no errors, no
	// runtime failovers needed.
	res, err := b.Query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 0 AND ts >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count = %d, want %d", res.Count, want)
	}
	failovers, _, _ := b.Stats()
	if failovers != 0 {
		t.Fatalf("failovers = %d, want 0 (health steering should pre-empt)", failovers)
	}
}

func TestAppendReroutesToRecoveredWorker(t *testing.T) {
	b, pool, _, _ := setupFailover(t, Config{AppendRetryWindow: 5 * time.Second})
	g := workload.NewGenerator(workload.GeneratorConfig{Tenants: 1, Theta: 0, Seed: 6, StartMS: 10})
	shard := b.router.Route(0)
	owner, _ := pool.ShardOwner(shard)
	w, _ := pool.Worker(owner)
	w.Crash()

	// Recovery lands mid-append: a rebuilt worker takes the dead one's
	// place (same id, same shards) while Append is already retrying.
	go func() {
		time.Sleep(50 * time.Millisecond)
		sch := schema.RequestLogSchema()
		w2, err := worker.New(worker.Config{
			ID: owner, Replicas: 1, ArchiveInterval: time.Hour,
			Builder: builder.Config{Table: sch.Name},
		}, sch, oss.NewMemStore(), meta.NewManager())
		if err != nil {
			panic(err)
		}
		for _, sid := range []flow.ShardID{shard} {
			if err := w2.AddShard(sid); err != nil {
				panic(err)
			}
		}
		pool.replace(owner, w2)
	}()

	if err := b.Append(g.Batch(50)); err != nil {
		t.Fatalf("append across recovery: %v", err)
	}
	_, _, reroutes := b.Stats()
	if reroutes == 0 {
		t.Fatal("append succeeded without rerouting through the dead worker")
	}
	w2, _ := pool.Worker(owner)
	t.Cleanup(w2.Close)
	if w2.ResidentRows() != 50 {
		t.Fatalf("recovered worker holds %d rows, want 50", w2.ResidentRows())
	}

	// With the retry window exhausted and no recovery, Append surfaces
	// the down error.
	b2, pool2, _, _ := setupFailover(t, Config{AppendRetryWindow: 50 * time.Millisecond})
	shard2 := b2.router.Route(0)
	owner2, _ := pool2.ShardOwner(shard2)
	dead, _ := pool2.Worker(owner2)
	dead.Crash()
	if err := b2.Append(g.Batch(10)); !errors.Is(err, worker.ErrWorkerDown) {
		t.Fatalf("append with no recovery = %v, want ErrWorkerDown", err)
	}
}
