// Package broker implements LogStore's distributed query layer (paper
// §3): brokers accept SQL requests, parse and validate them, route
// writes by the tenant routing table pushed from the controller's
// hotspot manager, scatter sub-queries — real-time reads to the shards
// that may hold the tenant's recent data, archived reads to workers
// chosen by cache affinity — and merge the partial results into the
// client response.
package broker

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sync"
	"time"

	"logstore/internal/backpressure"
	"logstore/internal/flow"
	"logstore/internal/meta"
	"logstore/internal/metrics"
	"logstore/internal/query"
	"logstore/internal/schema"
	"logstore/internal/worker"
)

// WorkerPool resolves workers and shard placement; the cluster harness
// implements it.
type WorkerPool interface {
	// Worker returns the worker node by id.
	Worker(id flow.WorkerID) (*worker.Worker, bool)
	// ShardOwner returns the worker hosting a shard.
	ShardOwner(s flow.ShardID) (flow.WorkerID, bool)
	// WorkerIDs lists all workers (ascending).
	WorkerIDs() []flow.WorkerID
}

// Config configures a broker.
type Config struct {
	ID int
	// ExecOptions controls archived-read optimizations; the default
	// enables data skipping (the paper's production setting).
	Exec query.ExecOptions
	// Seed randomizes weighted routing.
	Seed int64
	// Health, when set, steers sub-queries and writes away from workers
	// the cluster believes are down or draining, and enables failover:
	// a failed block sub-query is retried on the next healthy worker.
	// Nil treats every worker as healthy (single-node setups, tests).
	Health *flow.HealthTracker
	// HedgeDelay, when positive, re-dispatches a block sub-query to a
	// second worker if the first has not answered within the delay (the
	// paper's tail-latency hedge); first success wins. At most one
	// hedge is launched per block set.
	HedgeDelay time.Duration
	// AppendRetryWindow bounds how long Append keeps re-routing a
	// tenant batch around a down worker before giving up (0 = 5s).
	AppendRetryWindow time.Duration
	// Admission, when set, rate-limits appends per tenant (rows/s and
	// bytes/s token buckets) under a global in-flight byte budget,
	// shedding excess with *backpressure.ErrOverloaded before any
	// routing or raft work is done. Nil disables admission control.
	Admission *backpressure.Admission
}

// Broker is one query-layer node.
type Broker struct {
	cfg       Config
	sch       *schema.Schema
	router    *flow.Router
	collector *flow.Collector
	catalog   *meta.Manager
	pool      WorkerPool

	// failover/hedge/reroute counters, exposed through Stats.
	failovers metrics.Counter
	hedges    metrics.Counter
	reroutes  metrics.Counter

	// degradation counters, exposed through DegradeStats: requests
	// stopped by caller cancellation, by an expired deadline, and
	// batches shed by admission control.
	canceled metrics.Counter
	expired  metrics.Counter
	shed     metrics.Counter
}

// New constructs a broker. The router must be subscribed to the
// controller's scheduler by the caller (scheduler.Subscribe(r.Update)).
func New(cfg Config, sch *schema.Schema, router *flow.Router,
	collector *flow.Collector, catalog *meta.Manager, pool WorkerPool) (*Broker, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if router == nil || collector == nil || catalog == nil || pool == nil {
		return nil, fmt.Errorf("broker: nil dependency")
	}
	return &Broker{cfg: cfg, sch: sch, router: router, collector: collector, catalog: catalog, pool: pool}, nil
}

// appendScratch is the reusable grouping state for one Append call: the
// per-tenant row buckets and the ordered tenant list. The map and the
// bucket slices keep their capacity across calls; only the row
// references are cleared before the scratch returns to the pool.
type appendScratch struct {
	byTenant map[int64][]schema.Row
	tenants  []int64
	charges  []backpressure.TenantCharge
}

var appendScratchPool = sync.Pool{New: func() any {
	return &appendScratch{byTenant: make(map[int64][]schema.Row)}
}}

func (s *appendScratch) release() {
	for _, t := range s.tenants {
		bucket := s.byTenant[t]
		for i := range bucket {
			bucket[i] = nil
		}
		s.byTenant[t] = bucket[:0]
	}
	s.tenants = s.tenants[:0]
	s.charges = s.charges[:0]
	appendScratchPool.Put(s)
}

// Append routes and writes a batch of rows. Rows may span tenants; the
// broker groups them, routes each tenant's sub-batch by the routing
// table, and records traffic for the hotspot monitor. The first error
// (including backpressure) aborts the remainder.
func (b *Broker) Append(rows []schema.Row) error {
	return b.AppendContext(context.Background(), rows)
}

// countCtxErr attributes a context failure to the right degradation
// counter and returns err unchanged.
func (b *Broker) countCtxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		b.expired.Inc()
	case errors.Is(err, context.Canceled):
		b.canceled.Inc()
	}
	return err
}

// AppendContext is Append bounded by ctx and gated by admission
// control. Per tenant sub-batch: admission runs first (a shed batch
// costs no routing, raft, or clock work and returns a typed
// *backpressure.ErrOverloaded carrying a retry hint), then the routed
// write, which stops re-routing the moment ctx dies.
func (b *Broker) AppendContext(ctx context.Context, rows []schema.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return b.countCtxErr(err)
	}
	tenantIdx := b.sch.TenantIdx()
	scratch := appendScratchPool.Get().(*appendScratch)
	defer scratch.release()
	for i, r := range rows {
		if err := r.Conforms(b.sch); err != nil {
			return fmt.Errorf("broker: row %d: %w", i, err)
		}
		t := r[tenantIdx].I
		bucket := scratch.byTenant[t]
		if len(bucket) == 0 {
			// First row for t this call (a pooled scratch keeps empty
			// buckets for tenants from earlier calls).
			scratch.tenants = append(scratch.tenants, t)
		}
		scratch.byTenant[t] = append(bucket, r)
	}
	tenants := scratch.tenants
	slices.Sort(tenants) // deterministic write order, no reflection
	if b.cfg.Admission == nil {
		for _, tenant := range tenants {
			if err := b.appendTenant(ctx, tenant, scratch.byTenant[tenant]); err != nil {
				return err
			}
		}
		return nil
	}

	// Admission runs up front in one locked pass over every tenant
	// sub-batch (clock, degradation probe, and lock amortized across
	// the call), admitting a prefix: a shed tenant stops the charging
	// scan, the admitted prefix is still written — the same outcome the
	// per-tenant interleaving produced — and the shed error surfaces
	// after. Byte sizing is skipped when no budget is denominated in
	// bytes.
	needBytes := b.cfg.Admission.NeedsBytes()
	charges := scratch.charges[:0]
	for _, tenant := range tenants {
		batch := scratch.byTenant[tenant]
		var bytes int64
		if needBytes {
			for _, r := range batch {
				bytes += int64(r.Size())
			}
		}
		charges = append(charges, backpressure.TenantCharge{Tenant: tenant, Rows: len(batch), Bytes: bytes})
	}
	scratch.charges = charges
	n, charged, admErr := b.cfg.Admission.AdmitBatch(charges)
	defer b.cfg.Admission.Release(charged)
	if admErr != nil {
		b.shed.Inc()
	}
	for _, tenant := range tenants[:n] {
		if err := b.appendTenant(ctx, tenant, scratch.byTenant[tenant]); err != nil {
			return err
		}
	}
	return admErr
}

// appendTenant routes one tenant's sub-batch and writes it, re-routing
// around worker death: if the owning worker is down (health says dead,
// or the write fails with ErrWorkerDown), the broker re-resolves the
// route and retries until the cluster swaps in the recovered worker —
// whose shard raft group elects its own leader — or the retry window
// closes. Raft leadership moves inside the worker are handled below the
// broker (worker.Append retries across elections itself).
func (b *Broker) appendTenant(ctx context.Context, tenant int64, batch []schema.Row) error {
	window := b.cfg.AppendRetryWindow
	if window <= 0 {
		window = 5 * time.Second
	}
	// The deadline is read lazily so the success path (every append,
	// under load) never touches the clock.
	var deadline time.Time
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return b.countCtxErr(err)
		}
		shard := b.router.Route(flow.TenantID(tenant))
		wid, ok := b.pool.ShardOwner(shard)
		if !ok {
			return fmt.Errorf("broker: shard %d has no owner", shard)
		}
		w, ok := b.pool.Worker(wid)
		switch {
		case !ok:
			lastErr = fmt.Errorf("broker: worker %d not found", wid)
		case b.cfg.Health != nil && b.cfg.Health.State(wid) == flow.WorkerDead:
			// Known-dead: don't burn the window inside a 5s worker-side
			// leader wait; re-check after a beat.
			lastErr = fmt.Errorf("broker: worker %d is down", wid)
		default:
			// Rows were conformance-checked in Append (and the row store
			// re-checks on insert), so skip the worker's middle pass.
			err := w.AppendTrustedCtx(ctx, shard, batch)
			if err == nil {
				b.collector.Record(flow.TenantID(tenant), shard, wid, int64(len(batch)))
				return nil
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return b.countCtxErr(err)
			}
			if !errors.Is(err, worker.ErrWorkerDown) {
				return fmt.Errorf("broker: append tenant %d to shard %d: %w", tenant, shard, err)
			}
			lastErr = err
		}
		if deadline.IsZero() {
			deadline = timeNow().Add(window)
		} else if timeNow().After(deadline) {
			return fmt.Errorf("broker: append tenant %d: no live route: %w", tenant, lastErr)
		}
		b.reroutes.Inc()
		if err := sleepInterruptible(ctx, 5*time.Millisecond); err != nil {
			return b.countCtxErr(err)
		}
	}
}

// sleepInterruptible pauses for d or until ctx dies, whichever comes
// first. A context that cannot be canceled takes the plain-sleep path.
func sleepInterruptible(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		timeSleep(d)
		return nil
	}
	t := newWallTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Query parses, plans, scatters, and merges one SQL query.
func (b *Broker) Query(sql string) (*query.Result, error) {
	return b.QueryContext(context.Background(), sql)
}

// QueryContext is Query bounded by ctx: a dead context returns before
// planning, and cancellation mid-scatter stops the sub-queries.
func (b *Broker) QueryContext(ctx context.Context, sql string) (*query.Result, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return b.ExecuteContext(ctx, q)
}

// Execute runs a parsed query.
func (b *Broker) Execute(q *query.Query) (*query.Result, error) {
	return b.ExecuteContext(context.Background(), q)
}

// ExecuteContext runs a parsed query under ctx. The context flows into
// every archived-block sub-query (through the worker's scan and down to
// object-storage reads) and every real-time scan, so one client
// deadline bounds the whole scatter.
func (b *Broker) ExecuteContext(ctx context.Context, q *query.Query) (*query.Result, error) {
	if err := q.Validate(b.sch); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, b.countCtxErr(err)
	}
	tenant, minTS, maxTS, ok := q.KeyRange(b.sch)
	if !ok {
		return nil, fmt.Errorf("broker: query must constrain %s with equality", b.sch.TenantCol)
	}

	// Plan: archived blocks from the LogBlock map, partitioned across
	// the workers the health tracker considers able to serve reads, by
	// path hash (stable → cache affinity); real-time sub-queries to
	// every shard in old+new routing plans. Workers the tracker flags
	// as slow (gray failure: alive but lagging) are excluded from the
	// primary partition and kept only as failover tail.
	blocks := b.catalog.Prune(tenant, minTS, maxTS)
	workerIDs := b.pool.WorkerIDs()
	if len(workerIDs) == 0 {
		return nil, fmt.Errorf("broker: no workers")
	}
	serving := b.servingWorkers(workerIDs)
	primary := b.preferFast(serving)
	byWorker := make(map[flow.WorkerID][]string)
	for _, blk := range blocks {
		h := fnv.New32a()
		h.Write([]byte(blk.Path))
		wid := primary[int(h.Sum32())%len(primary)]
		byWorker[wid] = append(byWorker[wid], blk.Path)
	}
	shards := b.router.ReadShards(flow.TenantID(tenant))

	type part struct {
		res *query.Result
		err error
	}
	results := make(chan part, len(byWorker)+len(shards))
	var wg sync.WaitGroup

	for wid, paths := range byWorker {
		wid, paths := wid, paths
		wg.Add(1)
		go func() {
			defer wg.Done()
			candidates := b.candidatesFrom(wid, primary)
			for _, s := range serving {
				if !slices.Contains(primary, s) {
					candidates = append(candidates, s) // slow workers: failover tail
				}
			}
			res, err := b.runBlockSet(ctx, paths, q, candidates)
			results <- part{res: res, err: err}
		}()
	}
	for _, shard := range shards {
		shard := shard
		wid, ok := b.pool.ShardOwner(shard)
		if !ok {
			continue // shard may have been removed; archived data covers it
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, ok := b.pool.Worker(wid)
			if !ok {
				results <- part{err: fmt.Errorf("broker: worker %d not found", wid)}
				return
			}
			res, err := w.QueryRealtimeCtx(ctx, shard, q)
			results <- part{res: res, err: err}
		}()
	}
	wg.Wait()
	close(results)

	final := query.NewResult(q, b.sch)
	var firstErr error
	for p := range results {
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			continue // drain so stragglers don't leak into a closed channel
		}
		final.Merge(p.res)
	}
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			return nil, b.countCtxErr(firstErr)
		}
		return nil, firstErr
	}
	if err := final.Finalize(q); err != nil {
		return nil, err
	}
	return final, nil
}

// preferFast drops slow-flagged workers from the primary read
// partition, keeping them only as failover candidates. If every
// serving worker is slow the full list is returned — universally
// degraded beats unavailable.
func (b *Broker) preferFast(serving []flow.WorkerID) []flow.WorkerID {
	if b.cfg.Health == nil {
		return serving
	}
	out := make([]flow.WorkerID, 0, len(serving))
	for _, wid := range serving {
		if b.cfg.Health.State(wid) != flow.WorkerSlow {
			out = append(out, wid)
		}
	}
	if len(out) == 0 {
		return serving
	}
	return out
}

// servingWorkers filters out workers the health tracker believes are
// dead. Draining workers still serve reads (they answer for the cached
// blocks they hold; only new writes avoid them). If health marks every
// worker dead the full list is returned — stale health must degrade to
// optimistic routing, never to total unavailability.
func (b *Broker) servingWorkers(all []flow.WorkerID) []flow.WorkerID {
	if b.cfg.Health == nil {
		return all
	}
	out := make([]flow.WorkerID, 0, len(all))
	for _, wid := range all {
		if b.cfg.Health.State(wid) != flow.WorkerDead {
			out = append(out, wid)
		}
	}
	if len(out) == 0 {
		return all
	}
	return out
}

// candidatesFrom orders the serving workers for one block set: the
// cache-affine preferred worker first, then the rest in rotation. Each
// worker appears once — failover tries every live worker at most once.
func (b *Broker) candidatesFrom(preferred flow.WorkerID, serving []flow.WorkerID) []flow.WorkerID {
	start := 0
	for i, wid := range serving {
		if wid == preferred {
			start = i
			break
		}
	}
	out := make([]flow.WorkerID, 0, len(serving))
	for i := range serving {
		out = append(out, serving[(start+i)%len(serving)])
	}
	return out
}

// runBlockSet executes one block sub-query with failover and (when
// configured) a single hedged re-dispatch. Archived blocks are readable
// by any worker — OSS is the shared source of truth — so a sub-query
// that fails on one worker (crash mid-query, ErrWorkerDown) is retried
// on the next candidate. With HedgeDelay set, a slow first worker gets
// one speculative duplicate on the next candidate; first success wins
// and stragglers drain into the buffered channel.
func (b *Broker) runBlockSet(ctx context.Context, paths []string, q *query.Query, candidates []flow.WorkerID) (*query.Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("broker: no workers for block set")
	}
	type part struct {
		res *query.Result
		err error
	}
	resc := make(chan part, len(candidates))
	attempt := func(wid flow.WorkerID) {
		w, ok := b.pool.Worker(wid)
		if !ok {
			resc <- part{err: fmt.Errorf("broker: worker %d not found", wid)}
			return
		}
		start := timeNow()
		res, err := w.QueryBlocksCtx(ctx, paths, q, b.cfg.Exec)
		// Feed the gray-failure detector: completion latency of every
		// sub-query, successful or not, but never latencies inflated by
		// our own caller's cancellation.
		if b.cfg.Health != nil && ctx.Err() == nil {
			b.cfg.Health.ReportLatency(wid, timeNow().Sub(start))
		}
		resc <- part{res: res, err: err}
	}
	launched := 1
	go attempt(candidates[0])
	var hedge <-chan time.Time
	if b.cfg.HedgeDelay > 0 && len(candidates) > 1 {
		t := newWallTimer(b.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	outstanding := 1
	var errs []error
	for {
		select {
		case p := <-resc:
			outstanding--
			if p.err == nil {
				return p.res, nil
			}
			errs = append(errs, p.err)
			if errors.Is(p.err, context.Canceled) || errors.Is(p.err, context.DeadlineExceeded) {
				// Our caller's context died: failover would rerun the
				// same doomed sub-query elsewhere.
				return nil, p.err
			}
			if launched < len(candidates) {
				b.failovers.Inc()
				go attempt(candidates[launched])
				launched++
				outstanding++
			} else if outstanding == 0 {
				return nil, errors.Join(errs...)
			}
		case <-hedge:
			hedge = nil
			if launched < len(candidates) {
				b.hedges.Inc()
				// The first worker has been silent for the whole hedge
				// delay — that silence is itself a latency observation.
				if b.cfg.Health != nil && ctx.Err() == nil {
					b.cfg.Health.ReportLatency(candidates[0], b.cfg.HedgeDelay)
				}
				go attempt(candidates[launched])
				launched++
				outstanding++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Stats reports the broker's failure-handling counters: block sub-query
// failovers, hedged re-dispatches, and append re-route retries.
func (b *Broker) Stats() (failovers, hedges, reroutes int64) {
	return b.failovers.Value(), b.hedges.Value(), b.reroutes.Value()
}

// DegradeStats reports the graceful-degradation counters: requests
// stopped by caller cancellation, requests refused or cut short by an
// expired deadline, and batches shed by admission control.
func (b *Broker) DegradeStats() (canceled, expired, shed int64) {
	return b.canceled.Value(), b.expired.Value(), b.shed.Value()
}

// Router exposes the broker's router (the scheduler subscribes it).
func (b *Broker) Router() *flow.Router { return b.router }
