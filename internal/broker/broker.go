// Package broker implements LogStore's distributed query layer (paper
// §3): brokers accept SQL requests, parse and validate them, route
// writes by the tenant routing table pushed from the controller's
// hotspot manager, scatter sub-queries — real-time reads to the shards
// that may hold the tenant's recent data, archived reads to workers
// chosen by cache affinity — and merge the partial results into the
// client response.
package broker

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"logstore/internal/flow"
	"logstore/internal/meta"
	"logstore/internal/query"
	"logstore/internal/schema"
	"logstore/internal/worker"
)

// WorkerPool resolves workers and shard placement; the cluster harness
// implements it.
type WorkerPool interface {
	// Worker returns the worker node by id.
	Worker(id flow.WorkerID) (*worker.Worker, bool)
	// ShardOwner returns the worker hosting a shard.
	ShardOwner(s flow.ShardID) (flow.WorkerID, bool)
	// WorkerIDs lists all workers (ascending).
	WorkerIDs() []flow.WorkerID
}

// Config configures a broker.
type Config struct {
	ID int
	// ExecOptions controls archived-read optimizations; the default
	// enables data skipping (the paper's production setting).
	Exec query.ExecOptions
	// Seed randomizes weighted routing.
	Seed int64
}

// Broker is one query-layer node.
type Broker struct {
	cfg       Config
	sch       *schema.Schema
	router    *flow.Router
	collector *flow.Collector
	catalog   *meta.Manager
	pool      WorkerPool
}

// New constructs a broker. The router must be subscribed to the
// controller's scheduler by the caller (scheduler.Subscribe(r.Update)).
func New(cfg Config, sch *schema.Schema, router *flow.Router,
	collector *flow.Collector, catalog *meta.Manager, pool WorkerPool) (*Broker, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if router == nil || collector == nil || catalog == nil || pool == nil {
		return nil, fmt.Errorf("broker: nil dependency")
	}
	return &Broker{cfg: cfg, sch: sch, router: router, collector: collector, catalog: catalog, pool: pool}, nil
}

// Append routes and writes a batch of rows. Rows may span tenants; the
// broker groups them, routes each tenant's sub-batch by the routing
// table, and records traffic for the hotspot monitor. The first error
// (including backpressure) aborts the remainder.
func (b *Broker) Append(rows []schema.Row) error {
	if len(rows) == 0 {
		return nil
	}
	tenantIdx := b.sch.TenantIdx()
	byTenant := make(map[int64][]schema.Row)
	for i, r := range rows {
		if err := r.Conforms(b.sch); err != nil {
			return fmt.Errorf("broker: row %d: %w", i, err)
		}
		byTenant[r[tenantIdx].I] = append(byTenant[r[tenantIdx].I], r)
	}
	tenants := make([]int64, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
	for _, tenant := range tenants {
		batch := byTenant[tenant]
		shard := b.router.Route(flow.TenantID(tenant))
		wid, ok := b.pool.ShardOwner(shard)
		if !ok {
			return fmt.Errorf("broker: shard %d has no owner", shard)
		}
		w, ok := b.pool.Worker(wid)
		if !ok {
			return fmt.Errorf("broker: worker %d not found", wid)
		}
		if err := w.Append(shard, batch); err != nil {
			return fmt.Errorf("broker: append tenant %d to shard %d: %w", tenant, shard, err)
		}
		b.collector.Record(flow.TenantID(tenant), shard, wid, int64(len(batch)))
	}
	return nil
}

// Query parses, plans, scatters, and merges one SQL query.
func (b *Broker) Query(sql string) (*query.Result, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return b.Execute(q)
}

// Execute runs a parsed query.
func (b *Broker) Execute(q *query.Query) (*query.Result, error) {
	if err := q.Validate(b.sch); err != nil {
		return nil, err
	}
	tenant, minTS, maxTS, ok := q.KeyRange(b.sch)
	if !ok {
		return nil, fmt.Errorf("broker: query must constrain %s with equality", b.sch.TenantCol)
	}

	// Plan: archived blocks from the LogBlock map, partitioned across
	// workers by path hash (stable → cache affinity); real-time
	// sub-queries to every shard in old+new routing plans.
	blocks := b.catalog.Prune(tenant, minTS, maxTS)
	byWorker := make(map[flow.WorkerID][]string)
	workerIDs := b.pool.WorkerIDs()
	if len(workerIDs) == 0 {
		return nil, fmt.Errorf("broker: no workers")
	}
	for _, blk := range blocks {
		h := fnv.New32a()
		h.Write([]byte(blk.Path))
		wid := workerIDs[int(h.Sum32())%len(workerIDs)]
		byWorker[wid] = append(byWorker[wid], blk.Path)
	}
	shards := b.router.ReadShards(flow.TenantID(tenant))

	type part struct {
		res *query.Result
		err error
	}
	results := make(chan part, len(byWorker)+len(shards))
	var wg sync.WaitGroup

	for wid, paths := range byWorker {
		wid, paths := wid, paths
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, ok := b.pool.Worker(wid)
			if !ok {
				results <- part{err: fmt.Errorf("broker: worker %d not found", wid)}
				return
			}
			res, err := w.QueryBlocks(paths, q, b.cfg.Exec)
			results <- part{res: res, err: err}
		}()
	}
	for _, shard := range shards {
		shard := shard
		wid, ok := b.pool.ShardOwner(shard)
		if !ok {
			continue // shard may have been removed; archived data covers it
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, ok := b.pool.Worker(wid)
			if !ok {
				results <- part{err: fmt.Errorf("broker: worker %d not found", wid)}
				return
			}
			res, err := w.QueryRealtime(shard, q)
			results <- part{res: res, err: err}
		}()
	}
	wg.Wait()
	close(results)

	final := query.NewResult(q, b.sch)
	for p := range results {
		if p.err != nil {
			return nil, p.err
		}
		final.Merge(p.res)
	}
	if err := final.Finalize(q); err != nil {
		return nil, err
	}
	return final, nil
}

// Router exposes the broker's router (the scheduler subscribes it).
func (b *Broker) Router() *flow.Router { return b.router }
