// Package broker implements LogStore's distributed query layer (paper
// §3): brokers accept SQL requests, parse and validate them, route
// writes by the tenant routing table pushed from the controller's
// hotspot manager, scatter sub-queries — real-time reads to the shards
// that may hold the tenant's recent data, archived reads to workers
// chosen by cache affinity — and merge the partial results into the
// client response.
package broker

import (
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sync"
	"time"

	"logstore/internal/flow"
	"logstore/internal/meta"
	"logstore/internal/metrics"
	"logstore/internal/query"
	"logstore/internal/schema"
	"logstore/internal/worker"
)

// WorkerPool resolves workers and shard placement; the cluster harness
// implements it.
type WorkerPool interface {
	// Worker returns the worker node by id.
	Worker(id flow.WorkerID) (*worker.Worker, bool)
	// ShardOwner returns the worker hosting a shard.
	ShardOwner(s flow.ShardID) (flow.WorkerID, bool)
	// WorkerIDs lists all workers (ascending).
	WorkerIDs() []flow.WorkerID
}

// Config configures a broker.
type Config struct {
	ID int
	// ExecOptions controls archived-read optimizations; the default
	// enables data skipping (the paper's production setting).
	Exec query.ExecOptions
	// Seed randomizes weighted routing.
	Seed int64
	// Health, when set, steers sub-queries and writes away from workers
	// the cluster believes are down or draining, and enables failover:
	// a failed block sub-query is retried on the next healthy worker.
	// Nil treats every worker as healthy (single-node setups, tests).
	Health *flow.HealthTracker
	// HedgeDelay, when positive, re-dispatches a block sub-query to a
	// second worker if the first has not answered within the delay (the
	// paper's tail-latency hedge); first success wins. At most one
	// hedge is launched per block set.
	HedgeDelay time.Duration
	// AppendRetryWindow bounds how long Append keeps re-routing a
	// tenant batch around a down worker before giving up (0 = 5s).
	AppendRetryWindow time.Duration
}

// Broker is one query-layer node.
type Broker struct {
	cfg       Config
	sch       *schema.Schema
	router    *flow.Router
	collector *flow.Collector
	catalog   *meta.Manager
	pool      WorkerPool

	// failover/hedge/reroute counters, exposed through Stats.
	failovers metrics.Counter
	hedges    metrics.Counter
	reroutes  metrics.Counter
}

// New constructs a broker. The router must be subscribed to the
// controller's scheduler by the caller (scheduler.Subscribe(r.Update)).
func New(cfg Config, sch *schema.Schema, router *flow.Router,
	collector *flow.Collector, catalog *meta.Manager, pool WorkerPool) (*Broker, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if router == nil || collector == nil || catalog == nil || pool == nil {
		return nil, fmt.Errorf("broker: nil dependency")
	}
	return &Broker{cfg: cfg, sch: sch, router: router, collector: collector, catalog: catalog, pool: pool}, nil
}

// appendScratch is the reusable grouping state for one Append call: the
// per-tenant row buckets and the ordered tenant list. The map and the
// bucket slices keep their capacity across calls; only the row
// references are cleared before the scratch returns to the pool.
type appendScratch struct {
	byTenant map[int64][]schema.Row
	tenants  []int64
}

var appendScratchPool = sync.Pool{New: func() any {
	return &appendScratch{byTenant: make(map[int64][]schema.Row)}
}}

func (s *appendScratch) release() {
	for _, t := range s.tenants {
		bucket := s.byTenant[t]
		for i := range bucket {
			bucket[i] = nil
		}
		s.byTenant[t] = bucket[:0]
	}
	s.tenants = s.tenants[:0]
	appendScratchPool.Put(s)
}

// Append routes and writes a batch of rows. Rows may span tenants; the
// broker groups them, routes each tenant's sub-batch by the routing
// table, and records traffic for the hotspot monitor. The first error
// (including backpressure) aborts the remainder.
func (b *Broker) Append(rows []schema.Row) error {
	if len(rows) == 0 {
		return nil
	}
	tenantIdx := b.sch.TenantIdx()
	scratch := appendScratchPool.Get().(*appendScratch)
	defer scratch.release()
	for i, r := range rows {
		if err := r.Conforms(b.sch); err != nil {
			return fmt.Errorf("broker: row %d: %w", i, err)
		}
		t := r[tenantIdx].I
		bucket := scratch.byTenant[t]
		if len(bucket) == 0 {
			// First row for t this call (a pooled scratch keeps empty
			// buckets for tenants from earlier calls).
			scratch.tenants = append(scratch.tenants, t)
		}
		scratch.byTenant[t] = append(bucket, r)
	}
	tenants := scratch.tenants
	slices.Sort(tenants) // deterministic write order, no reflection
	for _, tenant := range tenants {
		if err := b.appendTenant(tenant, scratch.byTenant[tenant]); err != nil {
			return err
		}
	}
	return nil
}

// appendTenant routes one tenant's sub-batch and writes it, re-routing
// around worker death: if the owning worker is down (health says dead,
// or the write fails with ErrWorkerDown), the broker re-resolves the
// route and retries until the cluster swaps in the recovered worker —
// whose shard raft group elects its own leader — or the retry window
// closes. Raft leadership moves inside the worker are handled below the
// broker (worker.Append retries across elections itself).
func (b *Broker) appendTenant(tenant int64, batch []schema.Row) error {
	window := b.cfg.AppendRetryWindow
	if window <= 0 {
		window = 5 * time.Second
	}
	// The deadline is read lazily so the success path (every append,
	// under load) never touches the clock.
	var deadline time.Time
	var lastErr error
	for attempt := 0; ; attempt++ {
		shard := b.router.Route(flow.TenantID(tenant))
		wid, ok := b.pool.ShardOwner(shard)
		if !ok {
			return fmt.Errorf("broker: shard %d has no owner", shard)
		}
		w, ok := b.pool.Worker(wid)
		switch {
		case !ok:
			lastErr = fmt.Errorf("broker: worker %d not found", wid)
		case b.cfg.Health != nil && b.cfg.Health.State(wid) == flow.WorkerDead:
			// Known-dead: don't burn the window inside a 5s worker-side
			// leader wait; re-check after a beat.
			lastErr = fmt.Errorf("broker: worker %d is down", wid)
		default:
			// Rows were conformance-checked in Append (and the row store
			// re-checks on insert), so skip the worker's middle pass.
			err := w.AppendTrusted(shard, batch)
			if err == nil {
				b.collector.Record(flow.TenantID(tenant), shard, wid, int64(len(batch)))
				return nil
			}
			if !errors.Is(err, worker.ErrWorkerDown) {
				return fmt.Errorf("broker: append tenant %d to shard %d: %w", tenant, shard, err)
			}
			lastErr = err
		}
		if deadline.IsZero() {
			deadline = timeNow().Add(window)
		} else if timeNow().After(deadline) {
			return fmt.Errorf("broker: append tenant %d: no live route: %w", tenant, lastErr)
		}
		b.reroutes.Inc()
		timeSleep(5 * time.Millisecond)
	}
}

// Query parses, plans, scatters, and merges one SQL query.
func (b *Broker) Query(sql string) (*query.Result, error) {
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	return b.Execute(q)
}

// Execute runs a parsed query.
func (b *Broker) Execute(q *query.Query) (*query.Result, error) {
	if err := q.Validate(b.sch); err != nil {
		return nil, err
	}
	tenant, minTS, maxTS, ok := q.KeyRange(b.sch)
	if !ok {
		return nil, fmt.Errorf("broker: query must constrain %s with equality", b.sch.TenantCol)
	}

	// Plan: archived blocks from the LogBlock map, partitioned across
	// the workers the health tracker considers able to serve reads, by
	// path hash (stable → cache affinity); real-time sub-queries to
	// every shard in old+new routing plans.
	blocks := b.catalog.Prune(tenant, minTS, maxTS)
	workerIDs := b.pool.WorkerIDs()
	if len(workerIDs) == 0 {
		return nil, fmt.Errorf("broker: no workers")
	}
	serving := b.servingWorkers(workerIDs)
	byWorker := make(map[flow.WorkerID][]string)
	for _, blk := range blocks {
		h := fnv.New32a()
		h.Write([]byte(blk.Path))
		wid := serving[int(h.Sum32())%len(serving)]
		byWorker[wid] = append(byWorker[wid], blk.Path)
	}
	shards := b.router.ReadShards(flow.TenantID(tenant))

	type part struct {
		res *query.Result
		err error
	}
	results := make(chan part, len(byWorker)+len(shards))
	var wg sync.WaitGroup

	for wid, paths := range byWorker {
		wid, paths := wid, paths
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.runBlockSet(paths, q, b.candidatesFrom(wid, serving))
			results <- part{res: res, err: err}
		}()
	}
	for _, shard := range shards {
		shard := shard
		wid, ok := b.pool.ShardOwner(shard)
		if !ok {
			continue // shard may have been removed; archived data covers it
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, ok := b.pool.Worker(wid)
			if !ok {
				results <- part{err: fmt.Errorf("broker: worker %d not found", wid)}
				return
			}
			res, err := w.QueryRealtime(shard, q)
			results <- part{res: res, err: err}
		}()
	}
	wg.Wait()
	close(results)

	final := query.NewResult(q, b.sch)
	for p := range results {
		if p.err != nil {
			return nil, p.err
		}
		final.Merge(p.res)
	}
	if err := final.Finalize(q); err != nil {
		return nil, err
	}
	return final, nil
}

// servingWorkers filters out workers the health tracker believes are
// dead. Draining workers still serve reads (they answer for the cached
// blocks they hold; only new writes avoid them). If health marks every
// worker dead the full list is returned — stale health must degrade to
// optimistic routing, never to total unavailability.
func (b *Broker) servingWorkers(all []flow.WorkerID) []flow.WorkerID {
	if b.cfg.Health == nil {
		return all
	}
	out := make([]flow.WorkerID, 0, len(all))
	for _, wid := range all {
		if b.cfg.Health.State(wid) != flow.WorkerDead {
			out = append(out, wid)
		}
	}
	if len(out) == 0 {
		return all
	}
	return out
}

// candidatesFrom orders the serving workers for one block set: the
// cache-affine preferred worker first, then the rest in rotation. Each
// worker appears once — failover tries every live worker at most once.
func (b *Broker) candidatesFrom(preferred flow.WorkerID, serving []flow.WorkerID) []flow.WorkerID {
	start := 0
	for i, wid := range serving {
		if wid == preferred {
			start = i
			break
		}
	}
	out := make([]flow.WorkerID, 0, len(serving))
	for i := range serving {
		out = append(out, serving[(start+i)%len(serving)])
	}
	return out
}

// runBlockSet executes one block sub-query with failover and (when
// configured) a single hedged re-dispatch. Archived blocks are readable
// by any worker — OSS is the shared source of truth — so a sub-query
// that fails on one worker (crash mid-query, ErrWorkerDown) is retried
// on the next candidate. With HedgeDelay set, a slow first worker gets
// one speculative duplicate on the next candidate; first success wins
// and stragglers drain into the buffered channel.
func (b *Broker) runBlockSet(paths []string, q *query.Query, candidates []flow.WorkerID) (*query.Result, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("broker: no workers for block set")
	}
	type part struct {
		res *query.Result
		err error
	}
	resc := make(chan part, len(candidates))
	attempt := func(wid flow.WorkerID) {
		w, ok := b.pool.Worker(wid)
		if !ok {
			resc <- part{err: fmt.Errorf("broker: worker %d not found", wid)}
			return
		}
		res, err := w.QueryBlocks(paths, q, b.cfg.Exec)
		resc <- part{res: res, err: err}
	}
	launched := 1
	go attempt(candidates[0])
	var hedge <-chan time.Time
	if b.cfg.HedgeDelay > 0 && len(candidates) > 1 {
		t := newWallTimer(b.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	outstanding := 1
	var errs []error
	for {
		select {
		case p := <-resc:
			outstanding--
			if p.err == nil {
				return p.res, nil
			}
			errs = append(errs, p.err)
			if launched < len(candidates) {
				b.failovers.Inc()
				go attempt(candidates[launched])
				launched++
				outstanding++
			} else if outstanding == 0 {
				return nil, errors.Join(errs...)
			}
		case <-hedge:
			hedge = nil
			if launched < len(candidates) {
				b.hedges.Inc()
				go attempt(candidates[launched])
				launched++
				outstanding++
			}
		}
	}
}

// Stats reports the broker's failure-handling counters: block sub-query
// failovers, hedged re-dispatches, and append re-route retries.
func (b *Broker) Stats() (failovers, hedges, reroutes int64) {
	return b.failovers.Value(), b.hedges.Value(), b.reroutes.Value()
}

// Router exposes the broker's router (the scheduler subscribes it).
func (b *Broker) Router() *flow.Router { return b.router }
