package broker

import (
	"strings"
	"testing"
	"time"

	"logstore/internal/builder"
	"logstore/internal/flow"
	"logstore/internal/meta"
	"logstore/internal/oss"
	"logstore/internal/query"
	"logstore/internal/schema"
	"logstore/internal/worker"
	"logstore/internal/workload"
)

// testPool is a minimal WorkerPool over in-process workers.
type testPool struct {
	workers map[flow.WorkerID]*worker.Worker
	owner   map[flow.ShardID]flow.WorkerID
}

func (p *testPool) Worker(id flow.WorkerID) (*worker.Worker, bool) {
	w, ok := p.workers[id]
	return w, ok
}

func (p *testPool) ShardOwner(s flow.ShardID) (flow.WorkerID, bool) {
	w, ok := p.owner[s]
	return w, ok
}

func (p *testPool) WorkerIDs() []flow.WorkerID {
	out := make([]flow.WorkerID, 0, len(p.workers))
	for id := range p.workers {
		out = append(out, id)
	}
	return out
}

func setup(t *testing.T) (*Broker, *testPool, *meta.Manager, *flow.Router) {
	t.Helper()
	sch := schema.RequestLogSchema()
	store := oss.NewMemStore()
	catalog := meta.NewManager()
	pool := &testPool{
		workers: map[flow.WorkerID]*worker.Worker{},
		owner:   map[flow.ShardID]flow.WorkerID{},
	}
	var shardIDs []flow.ShardID
	sid := flow.ShardID(0)
	for wid := flow.WorkerID(0); wid < 2; wid++ {
		w, err := worker.New(worker.Config{
			ID: wid, Replicas: 1, ArchiveInterval: time.Hour,
			Builder: builder.Config{Table: sch.Name},
		}, sch, store, catalog)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		for j := 0; j < 2; j++ {
			if err := w.AddShard(sid); err != nil {
				t.Fatal(err)
			}
			pool.owner[sid] = wid
			shardIDs = append(shardIDs, sid)
			sid++
		}
		pool.workers[wid] = w
	}
	router := flow.NewRouter(shardIDs, 1)
	// Static routing: every tenant to its consistent-hash home.
	collector := flow.NewCollector(time.Second)
	b, err := New(Config{ID: 0, Exec: query.ExecOptions{DataSkipping: true}},
		sch, router, collector, catalog, pool)
	if err != nil {
		t.Fatal(err)
	}
	return b, pool, catalog, router
}

func TestNewValidation(t *testing.T) {
	sch := schema.RequestLogSchema()
	r := flow.NewRouter(nil, 1)
	col := flow.NewCollector(time.Second)
	cat := meta.NewManager()
	pool := &testPool{}
	if _, err := New(Config{}, &schema.Schema{}, r, col, cat, pool); err == nil {
		t.Error("invalid schema accepted")
	}
	if _, err := New(Config{}, sch, nil, col, cat, pool); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := New(Config{}, sch, r, nil, cat, pool); err == nil {
		t.Error("nil collector accepted")
	}
	if _, err := New(Config{}, sch, r, col, nil, pool); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := New(Config{}, sch, r, col, cat, nil); err == nil {
		t.Error("nil pool accepted")
	}
}

func TestAppendRoutesByTenant(t *testing.T) {
	b, pool, _, _ := setup(t)
	g := workload.NewGenerator(workload.GeneratorConfig{Tenants: 8, Theta: 0, Seed: 1, StartMS: 100})
	if err := b.Append(g.Batch(400)); err != nil {
		t.Fatal(err)
	}
	var resident int64
	for _, w := range pool.workers {
		resident += w.ResidentRows()
	}
	if resident != 400 {
		t.Fatalf("resident rows = %d, want 400", resident)
	}
	// Empty append is a no-op.
	if err := b.Append(nil); err != nil {
		t.Fatal(err)
	}
	// Invalid rows abort before any routing.
	if err := b.Append([]schema.Row{{schema.IntValue(1)}}); err == nil {
		t.Error("malformed row accepted")
	}
}

func TestQueryScatterGather(t *testing.T) {
	b, pool, _, _ := setup(t)
	g := workload.NewGenerator(workload.GeneratorConfig{Tenants: 4, Theta: 0, Seed: 2, StartMS: 1000})
	rows := g.Batch(800)
	if err := b.Append(rows); err != nil {
		t.Fatal(err)
	}
	// Archive half the data so the query spans realtime + blocks.
	for _, w := range pool.workers {
		for _, sid := range w.Shards() {
			if err := w.FlushShard(sid); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Append(g.Batch(200)); err != nil {
		t.Fatal(err)
	}
	sch := schema.RequestLogSchema()
	want := 0
	for _, r := range rows {
		if r.Tenant(sch) == 2 {
			want++
		}
	}
	res, err := b.Query("SELECT COUNT(*) FROM request_log WHERE tenant_id = 2 AND ts >= 0 AND ts <= 99999999")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count <= int64(want)/2 {
		t.Fatalf("count = %d, want > %d", res.Count, want/2)
	}
}

func TestQueryRejectsMissingTenant(t *testing.T) {
	b, _, _, _ := setup(t)
	_, err := b.Query("SELECT log FROM request_log WHERE latency > 5")
	if err == nil || !strings.Contains(err.Error(), "tenant") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryParseAndValidationErrors(t *testing.T) {
	b, _, _, _ := setup(t)
	if _, err := b.Query("NOT SQL"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := b.Query("SELECT ghost FROM request_log WHERE tenant_id = 1"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestQueryBlockAffinity(t *testing.T) {
	// The same block path must always land on the same worker (cache
	// affinity): run the same query twice and confirm only one worker's
	// cache warmed per path set.
	b, pool, catalog, _ := setup(t)
	g := workload.NewGenerator(workload.GeneratorConfig{Tenants: 1, Theta: 0, Seed: 3, StartMS: 10})
	if err := b.Append(g.Batch(500)); err != nil {
		t.Fatal(err)
	}
	for _, w := range pool.workers {
		for _, sid := range w.Shards() {
			if err := w.FlushShard(sid); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(catalog.Blocks(0)) == 0 {
		t.Fatal("nothing archived")
	}
	sql := "SELECT COUNT(*) FROM request_log WHERE tenant_id = 0 AND ts >= 0 AND ts <= 9999999"
	r1, err := b.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count != r2.Count || r1.Count != 500 {
		t.Fatalf("counts: %d vs %d, want 500", r1.Count, r2.Count)
	}
}

func TestRouterAccessor(t *testing.T) {
	b, _, _, router := setup(t)
	if b.Router() != router {
		t.Error("Router() identity broken")
	}
}
