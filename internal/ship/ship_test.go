package ship

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"logstore/internal/oss"
	"logstore/internal/raft"
)

func testEntries(first, last uint64) []raft.Entry {
	var out []raft.Entry
	for i := first; i <= last; i++ {
		out = append(out, raft.Entry{Term: 1, Index: i, Data: []byte(fmt.Sprintf("row-%d", i))})
	}
	return out
}

// fakeSource serves snapshots over whatever entries have been fed to
// it — the test's stand-in for the worker's apply-locked state cut.
type fakeSource struct {
	mu sync.Mutex
	st State
}

func (f *fakeSource) set(st State) {
	f.mu.Lock()
	f.st = st
	f.mu.Unlock()
}

func (f *fakeSource) source() (State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	st.Entries = append([]raft.Entry(nil), st.Entries...)
	st.DedupIDs = append([]uint64(nil), st.DedupIDs...)
	return st, nil
}

func TestSnapRoundTrip(t *testing.T) {
	st := State{
		Term: 7, Applied: 3, AppliedTerm: 2,
		DedupIDs: []uint64{11, 22, 33},
		Entries:  testEntries(4, 9),
	}
	got, err := decodeSnap(encodeSnap(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Term != 7 || got.Applied != 3 || got.AppliedTerm != 2 ||
		len(got.DedupIDs) != 3 || len(got.Entries) != 6 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if got.Tip() != 9 {
		t.Fatalf("tip = %d, want 9", got.Tip())
	}

	// Every truncation of the object must fail the CRC, never decode
	// into a shorter-but-valid state.
	blob := encodeSnap(st)
	for cut := 0; cut < len(blob); cut++ {
		if _, err := decodeSnap(blob[:cut]); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) decoded cleanly", cut, len(blob))
		}
	}
	// Bit flip anywhere must fail too.
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := decodeSnap(flipped); err == nil {
		t.Fatal("corrupt snapshot decoded cleanly")
	}
}

func TestChunkRoundTrip(t *testing.T) {
	entries := testEntries(10, 14)
	got, err := decodeChunk(encodeChunk(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Index != 10 || got[4].Index != 14 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if _, err := decodeChunk([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as chunk")
	}
}

func TestRegistryRegisterFences(t *testing.T) {
	store := oss.NewMemStore()
	reg := NewRegistry(store)
	const shard = 5

	g1, err := reg.Acquire(shard)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := reg.Acquire(shard)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 || g1 == 0 || g2 == 0 {
		t.Fatalf("acquire handed out %d and %d", g1, g2)
	}
	// The higher generation registers first (the failover winner);
	// the stale one must be fenced out, and CURRENT must keep naming
	// the winner.
	if err := reg.Register(shard, g2); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(shard, g1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale register: err = %v, want ErrFenced", err)
	}
	cur, err := reg.CurrentGen(shard)
	if err != nil {
		t.Fatal(err)
	}
	if cur != g2 {
		t.Fatalf("current generation = %d, want %d", cur, g2)
	}

	// A fresh registry over the same store (cluster reopen) must resume
	// above the existing lineage, not restart at 1.
	reg2 := NewRegistry(store)
	g3, err := reg2.Acquire(shard)
	if err != nil {
		t.Fatal(err)
	}
	if g3 <= g2 {
		t.Fatalf("reopened registry acquired %d, want > %d", g3, g2)
	}
}

func newTestShipper(t *testing.T, store oss.Store, shard int64, src *fakeSource) (*Shipper, *Registry) {
	t.Helper()
	reg := NewRegistry(store)
	s := New(Options{Store: store, Registry: reg, Linger: 5 * time.Millisecond}, shard, 1, src.source)
	t.Cleanup(func() { s.Stop(false) })
	return s, reg
}

func TestShipAndHydrate(t *testing.T) {
	store := oss.NewMemStore()
	src := &fakeSource{}
	src.set(State{Term: 1})
	s, reg := newTestShipper(t, store, 1, src)

	entries := testEntries(1, 20)
	s.Offer(entries[:12])
	s.Offer(entries[:12]) // a second replica reports the same commit: must dedup
	s.Offer(entries[12:])
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}

	st, ok, torn, err := Hydrate(store, NewRegistry(store), 1)
	if err != nil || !ok || torn {
		t.Fatalf("hydrate: ok=%v torn=%v err=%v", ok, torn, err)
	}
	if len(st.Entries) != 20 || st.Entries[0].Index != 1 || st.Tip() != 20 {
		t.Fatalf("hydrated %d entries, tip %d, want 20/20", len(st.Entries), st.Tip())
	}

	// The archive mark rides commit records even with no new entries:
	// hydration must learn rows 1..15 are in LogBlocks.
	s.NoteArchived(15)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok, _, err = Hydrate(store, NewRegistry(store), 1)
		if err != nil {
			t.Fatal(err)
		}
		if ok && st.Applied == 15 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("archive mark never shipped: applied=%d", st.Applied)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Tip() != 20 {
		t.Fatalf("tip = %d after mark-only chunk, want 20", st.Tip())
	}
	_ = reg
}

func TestHydrateUnknownShard(t *testing.T) {
	store := oss.NewMemStore()
	_, ok, torn, err := Hydrate(store, NewRegistry(store), 42)
	if err != nil || ok || torn {
		t.Fatalf("fresh shard: ok=%v torn=%v err=%v, want false/false/nil", ok, torn, err)
	}
}

// TestShipThroughFlakyStore drives the ship loop through throttling and
// deterministic Put failures: the retry layer must absorb them and the
// barrier must still complete with everything hydratable.
func TestShipThroughFlakyStore(t *testing.T) {
	mem := oss.NewMemStore()
	flaky := oss.NewFlakyStore(mem, 0, 0, 1)
	flaky.FailNextPuts(3) // throttle the snapshot/chunk uploads
	src := &fakeSource{}
	src.set(State{Term: 1})
	s, _ := newTestShipper(t, flaky, 2, src)

	s.Offer(testEntries(1, 10))
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	if flaky.InjectedFailures() == 0 {
		t.Fatal("flaky store injected nothing; test exercised no fault")
	}
	st, ok, torn, err := Hydrate(mem, NewRegistry(mem), 2)
	if err != nil || !ok || torn {
		t.Fatalf("hydrate: ok=%v torn=%v err=%v", ok, torn, err)
	}
	if st.Tip() != 10 {
		t.Fatalf("tip = %d, want 10", st.Tip())
	}
}

// TestShipTornPutDetected injects acked-but-truncated Puts (the torn
// write mode): the shipper's read-back/size probes must catch the torn
// object before the commit record, and the eventual shipped state must
// be complete.
func TestShipTornPutDetected(t *testing.T) {
	mem := oss.NewMemStore()
	flaky := oss.NewFlakyStore(mem, 0, 0, 1)
	flaky.PartialNextPuts(2, 0.5) // tear the first two uploads silently
	src := &fakeSource{}
	src.set(State{Term: 1})
	s, _ := newTestShipper(t, flaky, 3, src)

	s.Offer(testEntries(1, 8))
	// A flush that detects its own torn upload errors the in-flight
	// barriers (clients retry the append); the next pass re-ships.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := s.Barrier()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("barrier never succeeded: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, ok, torn, err := Hydrate(mem, NewRegistry(mem), 3)
	if err != nil || !ok || torn {
		t.Fatalf("hydrate: ok=%v torn=%v err=%v", ok, torn, err)
	}
	if st.Tip() != 8 {
		t.Fatalf("tip = %d, want 8", st.Tip())
	}
	if s.Stats().Errors == 0 {
		t.Fatal("shipper reported no errors despite torn uploads")
	}
}

// TestHydrateTornChunkFallback simulates an uploader dying mid-chunk:
// the chunk object is shorter than its commit record says. Hydration
// must fall back to the previous sealed chunk rather than fail or
// surface a short log.
func TestHydrateTornChunkFallback(t *testing.T) {
	store := oss.NewMemStore()
	src := &fakeSource{}
	src.set(State{Term: 1})
	s, _ := newTestShipper(t, store, 4, src)

	s.Offer(testEntries(1, 5))
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	s.Offer(testEntries(6, 9))
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	s.Stop(false)

	// Truncate the last committed chunk in place.
	infos, err := store.List("wal/4/")
	if err != nil {
		t.Fatal(err)
	}
	var lastChunk string
	for _, info := range infos {
		if strings.Contains(info.Key, "/chunk-") && info.Key > lastChunk {
			lastChunk = info.Key
		}
	}
	if lastChunk == "" {
		t.Fatal("no chunk objects shipped")
	}
	data, err := store.Get(lastChunk)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(lastChunk, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}

	st, ok, torn, err := Hydrate(store, NewRegistry(store), 4)
	if err != nil || !ok {
		t.Fatalf("hydrate: ok=%v err=%v", ok, err)
	}
	if !torn {
		t.Fatal("truncated chunk not reported as torn")
	}
	// Everything before the torn chunk survives; the torn chunk's range
	// does not (it was never fully acked as shipped by that uploader).
	if st.Tip() < 5 || st.Tip() >= 9 {
		t.Fatalf("fallback tip = %d, want in [5,9)", st.Tip())
	}
	for i, e := range st.Entries {
		if e.Index != uint64(i)+1 {
			t.Fatalf("entry %d has index %d; fallback state must stay contiguous", i, e.Index)
		}
	}
}

// TestGenerationHandoff races two shippers for the same shard — the
// recovery-overlap scenario where the old worker's shipper is still
// breathing when the new worker takes over. They must converge on the
// newer generation, the loser must fence itself, and no objects of the
// losing lineage may remain.
func TestGenerationHandoff(t *testing.T) {
	store := oss.NewMemStore()
	reg := NewRegistry(store)
	const shard = int64(6)

	srcA := &fakeSource{}
	srcA.set(State{Term: 1})
	a := New(Options{Store: store, Registry: reg, Linger: 5 * time.Millisecond}, shard, 1, srcA.source)
	defer a.Stop(false)
	a.Offer(testEntries(1, 6))
	if err := a.Barrier(); err != nil {
		t.Fatal(err)
	}
	genA := a.Stats().Gen

	// The new worker hydrated entries 1..6 and boots its own shipper.
	srcB := &fakeSource{}
	srcB.set(State{Term: 2, Entries: testEntries(1, 6)})
	b := New(Options{Store: store, Registry: reg, Linger: 5 * time.Millisecond}, shard, 7, srcB.source)
	defer b.Stop(false)
	b.Offer(testEntries(7, 9))
	if err := b.Barrier(); err != nil {
		t.Fatal(err)
	}
	if g := b.Stats().Gen; g <= genA {
		t.Fatalf("new shipper registered gen %d, want > %d", g, genA)
	}

	// The stale shipper tries to keep shipping: it must fence, not
	// interleave its writes into the new lineage.
	a.Offer(testEntries(7, 12))
	if err := a.Barrier(); err == nil {
		t.Fatal("stale shipper's barrier succeeded; want fencing error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !a.Stats().Fenced {
		if time.Now().After(deadline) {
			t.Fatal("stale shipper never fenced itself")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Exactly one generation's objects remain (plus CURRENT), and the
	// surviving lineage hydrates to the new shipper's run.
	st, ok, torn, err := Hydrate(store, NewRegistry(store), shard)
	if err != nil || !ok || torn {
		t.Fatalf("hydrate: ok=%v torn=%v err=%v", ok, torn, err)
	}
	if st.Tip() != 9 {
		t.Fatalf("surviving tip = %d, want 9", st.Tip())
	}
	infos, err := store.List(fmt.Sprintf("wal/%d/", shard))
	if err != nil {
		t.Fatal(err)
	}
	winPrefix := GenPrefix(shard, b.Stats().Gen)
	cur := fmt.Sprintf("wal/%d/CURRENT", shard)
	for _, info := range infos {
		if info.Key != cur && !strings.HasPrefix(info.Key, winPrefix) {
			t.Fatalf("orphaned object from losing generation: %s", info.Key)
		}
	}
}

// TestShipperBackpressure: with OSS dark, the async backlog must trip
// Overloaded once MaxBacklog is exceeded, and drain after the store
// heals.
func TestShipperBackpressure(t *testing.T) {
	mem := oss.NewMemStore()
	flaky := oss.NewFlakyStore(mem, 1.0, 0, 1) // every Put fails
	reg := NewRegistry(flaky)
	src := &fakeSource{}
	src.set(State{Term: 1})
	s := New(Options{
		Store: flaky, Registry: reg,
		Linger: 5 * time.Millisecond, MaxBacklog: 256,
	}, 7, 1, src.source)
	defer s.Stop(false)

	var entries []raft.Entry
	for i := uint64(1); i <= 40; i++ {
		entries = append(entries, raft.Entry{Term: 1, Index: i, Data: make([]byte, 64)})
	}
	s.Offer(entries)
	if !s.Overloaded() {
		t.Fatalf("backlog %d bytes with store dark: want Overloaded", s.Stats().UnshippedBytes)
	}

	flaky.SetRates(0, 0) // heal
	deadline := time.Now().Add(10 * time.Second)
	for s.Overloaded() || s.Stats().UnshippedEntries > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained after heal: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, ok, torn, err := Hydrate(mem, NewRegistry(mem), 7)
	if err != nil || !ok || torn {
		t.Fatalf("hydrate: ok=%v torn=%v err=%v", ok, torn, err)
	}
	if st.Tip() != 40 {
		t.Fatalf("tip = %d after drain, want 40", st.Tip())
	}
}

// TestShipperGapRolls: a commit-index jump (snapshot install on a
// follower feeding the hook) must not ship a discontiguous chunk — the
// shipper rolls a fresh generation whose snapshot covers the hole.
func TestShipperGapRolls(t *testing.T) {
	store := oss.NewMemStore()
	src := &fakeSource{}
	src.set(State{Term: 1})
	s, _ := newTestShipper(t, store, 8, src)

	s.Offer(testEntries(1, 4))
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Jump: indexes 5..7 never pass through the hook.
	s.Offer(testEntries(8, 10))
	// The roll cannot proceed until the source can cover the stream.
	src.set(State{Term: 1, Entries: testEntries(1, 10)})
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}

	st, ok, torn, err := Hydrate(store, NewRegistry(store), 8)
	if err != nil || !ok || torn {
		t.Fatalf("hydrate: ok=%v torn=%v err=%v", ok, torn, err)
	}
	if st.Tip() != 10 {
		t.Fatalf("tip = %d, want 10", st.Tip())
	}
	for i, e := range st.Entries {
		if e.Index != uint64(i)+1 {
			t.Fatalf("hydrated entry %d has index %d; want contiguous from 1", i, e.Index)
		}
	}
}
