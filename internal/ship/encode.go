package ship

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"logstore/internal/bitutil"
	"logstore/internal/raft"
)

// Object formats. A generation is self-contained: one snapshot object
// plus a run of chunk objects, each committed by a small commit record
// written after the chunk (register-last, like the archive pipeline's
// catalog). The commit record carries the chunk's exact length and
// CRC, so a chunk an object store persisted truncated mid-record —
// while still acking the Put — is detected on hydration instead of
// silently shortening the log.
//
//	snap        := magic "LSSNAP1\n"
//	               uvarint(term) uvarint(applied) uvarint(appliedTerm)
//	               uvarint(ndedup) { 8B-LE id }*
//	               uvarint(nentries) { entry }*
//	               4B-LE crc32c(all preceding bytes)
//	chunk-<seq>  := magic "LSCHNK1\n" uvarint(nentries) { entry }*
//	commit-<seq> := JSON {first, last, bytes, crc}
//
// entry is raft.Entry.AppendTo (uvarint term, uvarint index,
// len-prefixed data).

var (
	snapMagic  = []byte("LSSNAP1\n")
	chunkMagic = []byte("LSCHNK1\n")
	crcTable   = crc32.MakeTable(crc32.Castagnoli)
)

// maxShippedEntries bounds decode loops against corrupt objects; real
// chunks are capped far lower by the flush thresholds.
const maxShippedEntries = 1 << 22

// State is the logical shard state a snapshot carries — everything a
// wiped worker needs beyond the archived LogBlocks: the raft term, the
// durable applied mark (rows at or below it are archived to OSS), the
// duplicate-suppression ids of batches applied at or below that mark,
// and the live log entries above it.
type State struct {
	Term        uint64
	Applied     uint64
	AppliedTerm uint64
	DedupIDs    []uint64
	Entries     []raft.Entry
}

// Tip is the highest log index the state covers (the applied mark when
// no live entries ride along).
func (st State) Tip() uint64 {
	if n := len(st.Entries); n > 0 {
		return st.Entries[n-1].Index
	}
	return st.Applied
}

// encodeSnap serializes a snapshot object.
func encodeSnap(st State) []byte {
	out := append([]byte(nil), snapMagic...)
	out = bitutil.AppendUvarint(out, st.Term)
	out = bitutil.AppendUvarint(out, st.Applied)
	out = bitutil.AppendUvarint(out, st.AppliedTerm)
	out = bitutil.AppendUvarint(out, uint64(len(st.DedupIDs)))
	for _, id := range st.DedupIDs {
		out = binary.LittleEndian.AppendUint64(out, id)
	}
	out = bitutil.AppendUvarint(out, uint64(len(st.Entries)))
	for _, e := range st.Entries {
		out = e.AppendTo(out)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// decodeSnap reverses encodeSnap, verifying the trailing CRC first so a
// torn or corrupt snapshot errors instead of hydrating a short state.
func decodeSnap(data []byte) (State, error) {
	var st State
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return st, fmt.Errorf("ship: not a snapshot object")
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return st, fmt.Errorf("ship: snapshot CRC mismatch")
	}
	off := len(snapMagic)
	read := func() (uint64, error) {
		v, n, err := bitutil.Uvarint(body[off:])
		off += n
		return v, err
	}
	var err error
	if st.Term, err = read(); err != nil {
		return st, fmt.Errorf("ship: snapshot term: %w", err)
	}
	if st.Applied, err = read(); err != nil {
		return st, fmt.Errorf("ship: snapshot applied: %w", err)
	}
	if st.AppliedTerm, err = read(); err != nil {
		return st, fmt.Errorf("ship: snapshot applied term: %w", err)
	}
	ndedup, err := read()
	if err != nil {
		return st, fmt.Errorf("ship: snapshot dedup count: %w", err)
	}
	if ndedup > uint64(len(body)-off)/8 {
		return st, fmt.Errorf("ship: implausible dedup count %d", ndedup)
	}
	st.DedupIDs = make([]uint64, 0, ndedup)
	for i := uint64(0); i < ndedup; i++ {
		st.DedupIDs = append(st.DedupIDs, binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	nentries, err := read()
	if err != nil {
		return st, fmt.Errorf("ship: snapshot entry count: %w", err)
	}
	if nentries > maxShippedEntries {
		return st, fmt.Errorf("ship: implausible entry count %d", nentries)
	}
	st.Entries = make([]raft.Entry, 0, nentries)
	for i := uint64(0); i < nentries; i++ {
		e, n, err := raft.DecodeEntry(body[off:])
		if err != nil {
			return st, fmt.Errorf("ship: snapshot entry %d: %w", i, err)
		}
		off += n
		st.Entries = append(st.Entries, e)
	}
	return st, nil
}

// encodeChunk serializes one run of committed entries.
func encodeChunk(entries []raft.Entry) []byte {
	out := append([]byte(nil), chunkMagic...)
	out = bitutil.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = e.AppendTo(out)
	}
	return out
}

// decodeChunk reverses encodeChunk.
func decodeChunk(data []byte) ([]raft.Entry, error) {
	if len(data) < len(chunkMagic) || string(data[:len(chunkMagic)]) != string(chunkMagic) {
		return nil, fmt.Errorf("ship: not a chunk object")
	}
	off := len(chunkMagic)
	n, c, err := bitutil.Uvarint(data[off:])
	if err != nil {
		return nil, fmt.Errorf("ship: chunk entry count: %w", err)
	}
	if n > maxShippedEntries {
		return nil, fmt.Errorf("ship: implausible chunk entry count %d", n)
	}
	off += c
	entries := make([]raft.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		e, c, err := raft.DecodeEntry(data[off:])
		if err != nil {
			return nil, fmt.Errorf("ship: chunk entry %d: %w", i, err)
		}
		off += c
		entries = append(entries, e)
	}
	return entries, nil
}

// commitRecord is the register-last metadata of one chunk: the exact
// size and checksum the chunk must have, the index range it covers
// (First/Last zero for an empty mark-only chunk), and the archive
// checkpoint at ship time. Mark lets hydration advance the applied
// mark past the snapshot's, so rows archived into LogBlocks after the
// snapshot are not re-applied as resident.
type commitRecord struct {
	First uint64 `json:"first"`
	Last  uint64 `json:"last"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
	Mark  uint64 `json:"mark"`
}

func encodeCommit(rec commitRecord) []byte {
	out, _ := json.Marshal(rec) // fixed shape: cannot fail
	return out
}

func decodeCommit(data []byte) (commitRecord, error) {
	var rec commitRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("ship: commit record: %w", err)
	}
	return rec, nil
}

func snapKey(shard int64, gen uint64) string {
	return GenPrefix(shard, gen) + "snap"
}

func chunkKey(shard int64, gen, seq uint64) string {
	return fmt.Sprintf("%schunk-%08d", GenPrefix(shard, gen), seq)
}

func commitKey(shard int64, gen, seq uint64) string {
	return fmt.Sprintf("%scommit-%08d", GenPrefix(shard, gen), seq)
}
