package ship

import "time"

// This file is the package's clock seam — the single place the shipper
// touches the wall clock. The linger timer pacing chunk flushes, the
// retry pause after a failed generation open, and the last-ship age
// gauge all route through these indirections, so tests can pin time and
// the wallclock analyzer keeps every other file deterministic.

var (
	timeNow   = time.Now
	timeSleep = time.Sleep
)

func newWallTicker(d time.Duration) *time.Ticker { return time.NewTicker(d) }
