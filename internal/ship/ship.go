// Package ship streams each shard's committed raft log into object
// storage so OSS holds every acked row, not only the archived ones. A
// per-shard shipper goroutine buffers committed entries (fed by the
// raft commit hook on every replica — duplicates collapse on index
// contiguity), flushes them as chunk objects under a registered
// generation, and periodically rolls the generation with a fresh
// snapshot so old chunks — like shipped local segments — can be
// truncated. A worker that lost its disks hydrates the latest
// generation (snapshot + chunk suffix) back into local WALs and
// resumes with resident+archived == acked intact.
package ship

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"logstore/internal/metrics"
	"logstore/internal/oss"
	"logstore/internal/raft"
	"logstore/internal/retry"
)

// ErrStopped is returned to barrier waiters when the shipper shuts
// down before their entries reached OSS.
var ErrStopped = errors.New("ship: shipper stopped")

// Defaults for the exposure-window knobs: how long an acked row may
// stay local-only before it must be in OSS.
const (
	DefaultLinger     = 100 * time.Millisecond
	DefaultMaxBytes   = 1 << 20
	DefaultMaxBacklog = 16 << 20
	DefaultRollChunks = 16

	// entryOverhead approximates per-entry framing when accounting
	// pending bytes against MaxBytes/MaxBacklog.
	entryOverhead = 20
)

// Options configures WAL shipping for a worker's shards.
type Options struct {
	// Store is the OSS backend shipped objects land in. It is wrapped
	// in the retry layer if it is not one already.
	Store oss.Store
	// Registry issues and fences per-shard shipping generations. All
	// shippers of a cluster must share one registry.
	Registry *Registry
	// Sync makes every append barrier on shipping: the ack implies the
	// rows are in OSS, closing the exposure window entirely at the cost
	// of one OSS round-trip per commit group.
	Sync bool
	// Linger bounds how long an acked-but-unshipped row may wait
	// before a flush (async mode's exposure window).
	Linger time.Duration
	// MaxBytes triggers a flush early once this much is pending.
	MaxBytes int64
	// MaxBacklog is the async-mode backpressure threshold: when OSS is
	// down and more than this is pending, appends are refused rather
	// than building unbounded local exposure.
	MaxBacklog int64
	// RollChunks is the snapshot cadence: once this many chunks
	// shipped and the archive mark advanced, the generation rolls.
	RollChunks int
}

// Source captures a consistent cut of shard state for a snapshot. The
// worker implements it under its apply lock: WAL base (= archive
// checkpoint mark), live entries above it, and the dedup ids at or
// below the mark.
type Source func() (State, error)

// Stats is a point-in-time observability snapshot of one shipper.
type Stats struct {
	Gen              uint64
	Watermark        uint64
	UnshippedBytes   int64
	UnshippedEntries int64
	LastShipAge      time.Duration
	Chunks           int64
	Snapshots        int64
	Rolls            int64
	Errors           int64
	Fenced           bool
}

type waiter struct {
	target uint64
	ch     chan error
}

// Shipper streams one shard's committed entries into OSS.
type Shipper struct {
	store  *oss.RetryingStore
	reg    *Registry
	shard  int64
	source Source

	linger     time.Duration
	maxBytes   int64
	maxBacklog int64
	rollChunks int

	flushCh  chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once

	mu           sync.Mutex
	pending      []raft.Entry // contiguous committed run [watermark+1, next)
	pendingBytes int64
	next         uint64 // next index Offer accepts
	maxOffered   uint64 // highest committed index any replica reported
	gapped       bool   // commit stream skipped indexes; chunking must stop until a roll
	watermark    uint64 // highest index the current generation covers in OSS
	gen          uint64 // registered generation (0 = none yet)
	archivedMark uint64 // highest locally archived applied index (NoteArchived)
	waiters      []waiter
	failed       error
	finalFlush   bool

	// Generation bookkeeping owned by the ship loop goroutine.
	seq             uint64
	snapBase        uint64
	chunksSinceSnap int
	lastShippedMark uint64

	lastShipNano metrics.Gauge
	chunks       metrics.Counter
	snaps        metrics.Counter
	rolls        metrics.Counter
	errs         metrics.Counter
}

// New starts a shipper for shard. next is the first log index the
// shipper should expect from the commit hook (local WAL tip + 1 at
// boot); everything at or below it is covered by the generation the
// first roll snapshots.
func New(opts Options, shard int64, next uint64, source Source) *Shipper {
	if opts.Linger <= 0 {
		opts.Linger = DefaultLinger
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.MaxBacklog <= 0 {
		opts.MaxBacklog = DefaultMaxBacklog
	}
	if opts.RollChunks <= 0 {
		opts.RollChunks = DefaultRollChunks
	}
	if next == 0 {
		next = 1
	}
	s := &Shipper{
		store:      oss.WithDefaultRetry(opts.Store),
		reg:        opts.Registry,
		shard:      shard,
		source:     source,
		linger:     opts.Linger,
		maxBytes:   opts.MaxBytes,
		maxBacklog: opts.MaxBacklog,
		rollChunks: opts.RollChunks,
		flushCh:    make(chan struct{}, 1),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
		next:       next,
	}
	s.lastShipNano.Set(timeNow().UnixNano())
	go s.loop()
	return s
}

// Offer feeds committed entries from a replica's commit hook. Every
// replica of the shard calls it; duplicates are dropped on index
// contiguity. It never blocks and never touches OSS — it runs inside
// the raft loop's critical path.
func (s *Shipper) Offer(entries []raft.Entry) {
	if len(entries) == 0 {
		return
	}
	s.mu.Lock()
	if s.failed != nil {
		s.mu.Unlock()
		return
	}
	last := entries[len(entries)-1].Index
	if last > s.maxOffered {
		s.maxOffered = last
	}
	signal := false
	if !s.gapped && last >= s.next {
		if entries[0].Index > s.next {
			// The commit index jumped (snapshot install): entries below
			// the jump never pass through here, so chunking must stop
			// and the next roll re-covers the log from a snapshot.
			s.gapped = true
			signal = true
		} else {
			for _, e := range entries {
				if e.Index < s.next {
					continue
				}
				if e.Index != s.next {
					s.gapped = true
					break
				}
				s.pending = append(s.pending, e)
				s.pendingBytes += int64(len(e.Data)) + entryOverhead
				s.next++
			}
			signal = s.gapped || s.pendingBytes >= s.maxBytes
		}
	}
	s.mu.Unlock()
	if signal {
		s.signalFlush()
	}
}

// Barrier blocks until every entry offered so far is in OSS (or the
// flush fails — callers retry the append; the re-commit is dedup'd).
// Sync-mode appends call this after the raft ack.
func (s *Shipper) Barrier() error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	target := s.maxOffered
	if s.watermark >= target {
		s.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	s.waiters = append(s.waiters, waiter{target: target, ch: ch})
	s.mu.Unlock()
	s.signalFlush()
	return <-ch
}

// NoteArchived records that rows at or below mark are archived into
// LogBlocks. The mark rides in every commit record so hydration never
// re-applies rows the catalog already holds, and it gates generation
// rolls (a snapshot is only worth taking once the archive moved).
func (s *Shipper) NoteArchived(mark uint64) {
	s.mu.Lock()
	changed := mark > s.archivedMark
	if changed {
		s.archivedMark = mark
	}
	s.mu.Unlock()
	if changed {
		s.signalFlush()
	}
}

// Overloaded reports whether the pending backlog exceeds MaxBacklog —
// the async-mode backpressure signal (OSS down, breaker open, local
// exposure at its bound).
func (s *Shipper) Overloaded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingBytes > s.maxBacklog
}

// Breaker exposes the OSS circuit breaker the shipper writes through.
func (s *Shipper) Breaker() *retry.Breaker { return s.store.Breaker() }

// Stats reports the shipper's observability counters.
func (s *Shipper) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Gen:              s.gen,
		Watermark:        s.watermark,
		UnshippedBytes:   s.pendingBytes,
		UnshippedEntries: int64(len(s.pending)),
		Fenced:           errors.Is(s.failed, ErrFenced),
	}
	s.mu.Unlock()
	st.LastShipAge = time.Duration(timeNow().UnixNano() - s.lastShipNano.Value())
	st.Chunks = s.chunks.Value()
	st.Snapshots = s.snaps.Value()
	st.Rolls = s.rolls.Value()
	st.Errors = s.errs.Value()
	return st
}

// Stop shuts the shipper down. With flush set it attempts one final
// flush first (graceful close); without, it abandons the backlog
// (crash semantics). Blocks until the ship loop exits.
func (s *Shipper) Stop(flush bool) {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.finalFlush = flush
		s.mu.Unlock()
		close(s.stopCh)
	})
	<-s.doneCh
}

func (s *Shipper) signalFlush() {
	select {
	case s.flushCh <- struct{}{}:
	default:
	}
}

func (s *Shipper) loop() {
	defer close(s.doneCh)
	ticker := newWallTicker(s.linger)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			s.mu.Lock()
			final := s.finalFlush && s.failed == nil
			s.mu.Unlock()
			if final {
				s.flushOnce()
			}
			s.die(ErrStopped)
			return
		case <-s.flushCh:
		case <-ticker.C:
		}
		if !s.flushOnce() {
			return
		}
	}
}

// flushOnce performs one pass of the ship loop: roll the generation if
// needed, then ship the pending chunk. Returns false when the shipper
// is permanently dead (fenced or stopped). All OSS traffic happens
// here, never under the shipper mutex and never in callers' goroutines.
func (s *Shipper) flushOnce() bool {
	s.mu.Lock()
	if s.failed != nil {
		s.mu.Unlock()
		return false
	}
	if s.gen == 0 && s.maxOffered == 0 && s.archivedMark == 0 {
		// Idle shard with no history: don't open a generation for it.
		s.mu.Unlock()
		return true
	}
	gapped := s.gapped
	archived := s.archivedMark
	gen := s.gen
	s.mu.Unlock()

	if gen == 0 || gapped || (s.chunksSinceSnap >= s.rollChunks && archived > s.snapBase) {
		switch ok, err := s.roll(); {
		case err != nil:
			s.errs.Inc()
			if errors.Is(err, ErrFenced) {
				s.die(ErrFenced)
				return false
			}
			s.failWaiters(err)
			return true
		case !ok:
			// Source hasn't caught up to the shipped watermark yet;
			// retry on the next tick.
			return true
		}
	}
	return s.shipChunk()
}

// roll opens a new generation: snapshot the shard, upload and
// read-back-verify it, register it as CURRENT, then sweep older
// generations. Returns (false, nil) when the source can't yet cover
// the shipped watermark (transient; retry later).
func (s *Shipper) roll() (bool, error) {
	st, err := s.source()
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	watermark := s.watermark
	maxOffered := s.maxOffered
	gapped := s.gapped
	s.mu.Unlock()
	tip := st.Tip()
	// A snapshot whose tip is behind what the current generation (or
	// the commit stream, when gapped) already covers would leave a
	// hole between snapshot and chunks that hydration can't cross.
	if tip < watermark || (gapped && tip < maxOffered) {
		return false, nil
	}

	gen, err := s.reg.Acquire(s.shard)
	if err != nil {
		return false, err
	}
	blob := encodeSnap(st)
	key := snapKey(s.shard, gen)
	if err := s.store.Put(key, blob); err != nil {
		s.cleanup(gen)
		return false, err
	}
	// Read back and verify before registering: register-last only
	// guarantees atomicity if a registered generation's snapshot is
	// beyond suspicion, even against a store that persisted a
	// truncated object while acking the Put.
	got, err := s.store.Get(key)
	if err != nil {
		s.cleanup(gen)
		return false, err
	}
	if len(got) != len(blob) || crc32.Checksum(got, crcTable) != crc32.Checksum(blob, crcTable) {
		s.cleanup(gen)
		return false, fmt.Errorf("ship: snapshot read-back mismatch for %s", key)
	}
	if err := s.reg.Register(s.shard, gen); err != nil {
		s.cleanup(gen)
		return false, err
	}

	s.seq = 0
	s.chunksSinceSnap = 0
	s.snapBase = st.Applied
	s.lastShippedMark = st.Applied
	s.snaps.Inc()
	s.rolls.Inc()

	s.mu.Lock()
	s.gen = gen
	s.watermark = tip
	s.gapped = false
	drop := 0
	for drop < len(s.pending) && s.pending[drop].Index <= tip {
		s.pendingBytes -= int64(len(s.pending[drop].Data)) + entryOverhead
		drop++
	}
	s.pending = append([]raft.Entry(nil), s.pending[drop:]...)
	if len(s.pending) > 0 && s.pending[0].Index != tip+1 {
		// Offers raced the roll and left a hole above the snapshot;
		// force another roll rather than ship a discontiguous chunk.
		s.pending = nil
		s.pendingBytes = 0
		s.gapped = true
	}
	if s.next < tip+1 {
		s.next = tip + 1
	}
	s.mu.Unlock()
	s.lastShipNano.Set(timeNow().UnixNano())
	s.releaseReady()
	// Older generations are now garbage — this is shipped-segment
	// truncation. Best-effort: a missed delete is retried next roll.
	if err := s.reg.Sweep(s.shard, gen); err != nil {
		s.errs.Inc()
	}
	return true, nil
}

// shipChunk uploads the pending run as one chunk + commit record. An
// empty chunk still ships when the archive mark advanced, so hydration
// learns about rows that moved into LogBlocks since the snapshot.
func (s *Shipper) shipChunk() bool {
	s.mu.Lock()
	if s.gapped {
		s.mu.Unlock()
		return true // roll on the next pass
	}
	var entries []raft.Entry
	if len(s.pending) > 0 {
		if s.pending[0].Index != s.watermark+1 {
			s.gapped = true
			s.mu.Unlock()
			s.signalFlush()
			return true
		}
		entries = append([]raft.Entry(nil), s.pending...)
	}
	mark := s.archivedMark
	gen := s.gen
	s.mu.Unlock()

	if gen == 0 || (len(entries) == 0 && mark <= s.lastShippedMark) {
		return true
	}
	if s.reg.Registered(s.shard) > gen {
		s.die(ErrFenced)
		return false
	}
	blob := encodeChunk(entries)
	ckey := chunkKey(s.shard, gen, s.seq)
	if err := s.store.Put(ckey, blob); err != nil {
		s.errs.Inc()
		s.failWaiters(err)
		return true
	}
	// Cheap size probe before the commit record: a store that acked a
	// truncated write must not get this chunk committed.
	info, err := s.store.Head(ckey)
	if err != nil {
		s.errs.Inc()
		s.failWaiters(err)
		return true
	}
	if info.Size != int64(len(blob)) {
		s.errs.Inc()
		s.failWaiters(fmt.Errorf("ship: chunk %s stored %d of %d bytes", ckey, info.Size, len(blob)))
		return true
	}
	rec := commitRecord{Bytes: int64(len(blob)), CRC: crc32.Checksum(blob, crcTable), Mark: mark}
	if len(entries) > 0 {
		rec.First = entries[0].Index
		rec.Last = entries[len(entries)-1].Index
	}
	if s.reg.Registered(s.shard) > gen {
		s.die(ErrFenced)
		return false
	}
	if err := s.store.Put(commitKey(s.shard, gen, s.seq), encodeCommit(rec)); err != nil {
		s.errs.Inc()
		s.failWaiters(err)
		return true
	}

	s.seq++
	s.chunksSinceSnap++
	s.lastShippedMark = mark
	s.chunks.Inc()
	s.lastShipNano.Set(timeNow().UnixNano())
	if len(entries) > 0 {
		last := entries[len(entries)-1].Index
		s.mu.Lock()
		if last > s.watermark {
			s.watermark = last
		}
		drop := 0
		for drop < len(s.pending) && s.pending[drop].Index <= last {
			s.pendingBytes -= int64(len(s.pending[drop].Data)) + entryOverhead
			drop++
		}
		s.pending = append([]raft.Entry(nil), s.pending[drop:]...)
		s.mu.Unlock()
	}
	s.releaseReady()
	return true
}

// releaseReady wakes barrier waiters whose target is now shipped.
func (s *Shipper) releaseReady() {
	s.mu.Lock()
	var ready []waiter
	keep := s.waiters[:0]
	for _, w := range s.waiters {
		if w.target <= s.watermark {
			ready = append(ready, w)
		} else {
			keep = append(keep, w)
		}
	}
	s.waiters = keep
	s.mu.Unlock()
	for _, w := range ready {
		w.ch <- nil
	}
}

// failWaiters errors every pending barrier: when a flush fails the
// callers retry their appends (the re-commit is content-dedup'd)
// instead of blocking on a dark object store.
func (s *Shipper) failWaiters(err error) {
	s.mu.Lock()
	ws := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, w := range ws {
		w.ch <- err
	}
}

// die marks the shipper permanently failed, drains waiters, and — when
// fenced — deletes its own generation's objects so a lost handoff race
// leaves nothing orphaned.
func (s *Shipper) die(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	gen := s.gen
	ws := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, w := range ws {
		w.ch <- err
	}
	if errors.Is(err, ErrFenced) && gen > 0 {
		s.cleanup(gen)
	}
}

// cleanup best-effort deletes a generation this shipper wrote but
// which never became (or no longer is) CURRENT.
func (s *Shipper) cleanup(gen uint64) {
	if err := s.reg.DeleteGeneration(s.shard, gen); err != nil {
		s.errs.Inc()
	}
}
