package ship

import (
	"errors"
	"fmt"
	"hash/crc32"

	"logstore/internal/oss"
)

// Hydrate rebuilds a shard's logical state from its current shipped
// generation: the snapshot plus every committed chunk after it. It is
// the disk-loss recovery path — a worker with a wiped data directory
// calls it before opening WALs.
//
// Returns ok=false (no error) when the shard has no registered
// generation (nothing was ever shipped — a genuinely fresh shard).
// torn reports that the chunk walk stopped early at a truncated or
// corrupt object: state is still valid through the previous sealed
// chunk (the register-last fallback), and everything past it was never
// barrier-acknowledged as shipped.
//
// The returned State's Applied/AppliedTerm are already advanced to the
// highest archive mark the generation recorded (clamped to the entry
// tip), so callers can hand it straight to raft recovery: entries at
// or below Applied replay as prefix (dedup preload, rows already in
// LogBlocks), entries above it re-apply as resident rows.
func Hydrate(store oss.Store, reg *Registry, shard int64) (st State, ok, torn bool, err error) {
	rs := oss.WithDefaultRetry(store)
	gen, err := reg.CurrentGen(shard)
	if err != nil {
		return State{}, false, false, err
	}
	if gen == 0 {
		return State{}, false, false, nil
	}
	data, err := rs.Get(snapKey(shard, gen))
	if err != nil {
		return State{}, false, false, fmt.Errorf("ship: generation %d snapshot for shard %d: %w", gen, shard, err)
	}
	st, err = decodeSnap(data)
	if err != nil {
		// A registered generation's snapshot was read-back-verified
		// before registration; failing here means real corruption, not
		// a torn upload, and there is no older truth to fall back to.
		return State{}, false, false, err
	}

	tip := st.Tip()
	mark := st.Applied
	for seq := uint64(0); ; seq++ {
		cdata, err := rs.Get(commitKey(shard, gen, seq))
		if errors.Is(err, oss.ErrNotFound) {
			break // end of the committed run
		}
		if err != nil {
			return State{}, false, false, err
		}
		rec, err := decodeCommit(cdata)
		if err != nil {
			// A torn commit record is an uncommitted chunk under the
			// register-last protocol: the run ends here.
			torn = true
			break
		}
		chunk, err := rs.Get(chunkKey(shard, gen, seq))
		if errors.Is(err, oss.ErrNotFound) {
			torn = true
			break
		}
		if err != nil {
			return State{}, false, false, err
		}
		if int64(len(chunk)) != rec.Bytes || crc32.Checksum(chunk, crcTable) != rec.CRC {
			// The chunk object does not match its commit record — it
			// was persisted truncated. Fall back to the previous
			// sealed chunk; nothing past it was acked as shipped.
			torn = true
			break
		}
		entries, err := decodeChunk(chunk)
		if err != nil {
			torn = true
			break
		}
		if len(entries) > 0 {
			if entries[0].Index != tip+1 || entries[0].Index != rec.First ||
				entries[len(entries)-1].Index != rec.Last {
				return State{}, false, false, fmt.Errorf(
					"ship: chunk %d of shard %d gen %d breaks contiguity at index %d (tip %d)",
					seq, shard, gen, entries[0].Index, tip)
			}
			st.Entries = append(st.Entries, entries...)
			tip = rec.Last
		}
		if rec.Mark > mark {
			mark = rec.Mark
		}
	}

	// Advance the applied mark to the recorded archive position. Rows
	// between the snapshot's mark and this one are already in LogBlocks;
	// replaying them as resident would double-count. The mark may
	// exceed the shipped tip (rows archived but their entries not yet
	// shipped when the disk died) — those rows are durable in
	// LogBlocks, so clamping to the tip loses nothing.
	if mark > tip {
		mark = tip
	}
	if mark > st.Applied {
		st.AppliedTerm = termAt(st, mark)
		st.Applied = mark
	}
	return st, true, torn, nil
}

// termAt resolves the term of the entry at index idx within st, for
// rebasing the applied mark. Falls back to the snapshot's base term
// when idx precedes the first carried entry.
func termAt(st State, idx uint64) uint64 {
	for i := len(st.Entries) - 1; i >= 0; i-- {
		if st.Entries[i].Index == idx {
			return st.Entries[i].Term
		}
		if st.Entries[i].Index < idx {
			break
		}
	}
	return st.AppliedTerm
}
