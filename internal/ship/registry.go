package ship

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"logstore/internal/oss"
)

// ErrFenced is returned to a shipper whose generation was superseded:
// another shipper registered a higher generation for the same shard
// (failover handed the shard to a new worker). The fenced shipper must
// stop writing and delete its own generation's objects.
var ErrFenced = errors.New("ship: generation fenced by a newer shipper")

// Registry hands out per-shard shipping generations and records which
// one is current. A generation is the unit of lineage in OSS: all of
// `wal/<shard>/<gen>/*` is written by exactly one shipper, and
// `wal/<shard>/CURRENT` names the generation hydration reads.
//
// The register-last protocol from the archive pipeline applies here
// too: Acquire only reserves a number; the shipper uploads (and
// read-back-verifies) the generation's snapshot first and calls
// Register after, so CURRENT never points at a generation without a
// valid snapshot. Two shippers racing after a failover both acquire
// distinct numbers, but Register is a take-the-max race: the loser gets
// ErrFenced (before or after its Put — a regressed CURRENT object is
// repaired in place) and cleans its own objects up, so the survivors
// converge on one generation with no interleaved segments.
type Registry struct {
	store oss.Store

	mu         sync.Mutex
	next       map[int64]uint64 // next generation to hand out
	registered map[int64]uint64 // highest registered generation
	loaded     map[int64]bool   // CURRENT consulted at least once
}

// NewRegistry builds a registry over store (wrapped in the retry layer
// if it is not already — CURRENT reads and writes are production OSS
// traffic like any other).
func NewRegistry(store oss.Store) *Registry {
	return &Registry{
		store:      oss.WithDefaultRetry(store),
		next:       make(map[int64]uint64),
		registered: make(map[int64]uint64),
		loaded:     make(map[int64]bool),
	}
}

// currentKey is the register-last pointer object for one shard.
func currentKey(shard int64) string { return fmt.Sprintf("wal/%d/CURRENT", shard) }

// GenPrefix is the object-key prefix of one shard generation.
func GenPrefix(shard int64, gen uint64) string {
	return fmt.Sprintf("wal/%d/%08d/", shard, gen)
}

// shardPrefix covers every shipping object of one shard (all
// generations plus CURRENT).
func shardPrefix(shard int64) string { return fmt.Sprintf("wal/%d/", shard) }

// load consults CURRENT once per shard so a registry rebuilt over an
// existing store (cluster reopen) resumes above prior generations. The
// OSS read happens outside the registry lock.
func (r *Registry) load(shard int64) error {
	r.mu.Lock()
	done := r.loaded[shard]
	r.mu.Unlock()
	if done {
		return nil
	}
	var cur uint64
	data, err := r.store.Get(currentKey(shard))
	switch {
	case errors.Is(err, oss.ErrNotFound):
		// No generation ever registered.
	case err != nil:
		return err
	default:
		cur, err = strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
		if err != nil {
			return fmt.Errorf("ship: corrupt %s: %w", currentKey(shard), err)
		}
	}
	r.mu.Lock()
	if !r.loaded[shard] {
		r.loaded[shard] = true
		if cur > r.registered[shard] {
			r.registered[shard] = cur
		}
		if cur >= r.next[shard] {
			r.next[shard] = cur + 1
		}
	}
	r.mu.Unlock()
	return nil
}

// Acquire reserves the next generation number for shard. The number is
// not visible to hydration until Register.
func (r *Registry) Acquire(shard int64) (uint64, error) {
	if err := r.load(shard); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next[shard] == 0 {
		r.next[shard] = 1
	}
	gen := r.next[shard]
	r.next[shard]++
	return gen, nil
}

// Register makes gen the current generation for shard — the commit
// point of a generation open or roll. It fails with ErrFenced when a
// higher generation registered first; if the losing Put landed after
// the winner's, the CURRENT object is repaired back to the winner.
func (r *Registry) Register(shard int64, gen uint64) error {
	r.mu.Lock()
	if gen <= r.registered[shard] {
		r.mu.Unlock()
		return ErrFenced
	}
	r.mu.Unlock()
	if err := r.store.Put(currentKey(shard), []byte(strconv.FormatUint(gen, 10))); err != nil {
		return err
	}
	r.mu.Lock()
	won := gen > r.registered[shard]
	if won {
		r.registered[shard] = gen
	}
	stale := r.registered[shard]
	r.mu.Unlock()
	if !won {
		// Our Put may have overwritten the winner's: repair in place so
		// the object agrees with the in-memory winner again.
		_ = r.store.Put(currentKey(shard), []byte(strconv.FormatUint(stale, 10)))
		return ErrFenced
	}
	return nil
}

// Registered reports the highest generation registered for shard (the
// shipper's fencing check; 0 = none). Memory-only — loaded lazily by
// Acquire/CurrentGen.
func (r *Registry) Registered(shard int64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registered[shard]
}

// CurrentGen resolves the current generation for shard, consulting the
// CURRENT object when this registry has not seen the shard yet
// (hydration after a full restart). 0 means no generation exists.
func (r *Registry) CurrentGen(shard int64) (uint64, error) {
	if err := r.load(shard); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registered[shard], nil
}

// Sweep deletes every object of shard generations below keep — the
// truncation half of shipping: once a newer snapshot covers the log,
// earlier generations are garbage. Best-effort: a missed delete is an
// orphan the next sweep retries.
func (r *Registry) Sweep(shard int64, keep uint64) error {
	infos, err := r.store.List(shardPrefix(shard))
	if err != nil {
		return err
	}
	keepPrefix := GenPrefix(shard, keep)
	cur := currentKey(shard)
	var firstErr error
	for _, info := range infos {
		if info.Key == cur || strings.HasPrefix(info.Key, keepPrefix) {
			continue
		}
		if err := r.store.Delete(info.Key); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DeleteGeneration removes every object one shipper wrote under its own
// generation — the fenced loser's cleanup, so a lost handoff race
// leaves no orphaned objects behind.
func (r *Registry) DeleteGeneration(shard int64, gen uint64) error {
	infos, err := r.store.List(GenPrefix(shard, gen))
	if err != nil {
		return err
	}
	var firstErr error
	for _, info := range infos {
		if err := r.store.Delete(info.Key); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
