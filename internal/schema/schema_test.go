package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func validSchema() *Schema {
	return &Schema{
		Name: "t",
		Columns: []Column{
			{Name: "tenant_id", Type: Int64, Index: IndexBKD},
			{Name: "ts", Type: Int64, Index: IndexBKD},
			{Name: "msg", Type: String, Index: IndexInverted},
		},
		TenantCol: "tenant_id",
		TimeCol:   "ts",
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := validSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Schema)
	}{
		{"empty name", func(s *Schema) { s.Name = "" }},
		{"no columns", func(s *Schema) { s.Columns = nil }},
		{"dup column", func(s *Schema) { s.Columns = append(s.Columns, Column{Name: "ts", Type: Int64}) }},
		{"empty column name", func(s *Schema) { s.Columns[0].Name = "" }},
		{"bad type", func(s *Schema) { s.Columns[0].Type = 99 }},
		{"missing tenant", func(s *Schema) { s.TenantCol = "nope" }},
		{"missing time", func(s *Schema) { s.TimeCol = "nope" }},
		{"string tenant", func(s *Schema) { s.TenantCol = "msg" }},
		{"string time", func(s *Schema) { s.TimeCol = "msg" }},
	}
	for _, tc := range cases {
		s := validSchema()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := validSchema()
	if got := s.ColumnIndex("ts"); got != 1 {
		t.Errorf("ColumnIndex(ts) = %d", got)
	}
	if got := s.ColumnIndex("nope"); got != -1 {
		t.Errorf("ColumnIndex(nope) = %d", got)
	}
	if s.TenantIdx() != 0 || s.TimeIdx() != 1 {
		t.Errorf("key indexes = %d, %d", s.TenantIdx(), s.TimeIdx())
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := RequestLogSchema()
	raw := s.Marshal()
	got, n, err := UnmarshalSchema(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d of %d bytes", n, len(raw))
	}
	if got.String() != s.String() {
		t.Errorf("round trip:\n got %s\nwant %s", got, s)
	}
	for i, c := range got.Columns {
		if c.Index != s.Columns[i].Index {
			t.Errorf("column %s index kind %d, want %d", c.Name, c.Index, s.Columns[i].Index)
		}
	}
}

func TestSchemaUnmarshalTruncated(t *testing.T) {
	raw := RequestLogSchema().Marshal()
	for cut := 0; cut < len(raw); cut += 3 {
		if _, _, err := UnmarshalSchema(raw[:cut]); err == nil {
			t.Errorf("truncation to %d bytes should error", cut)
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := validSchema()
	out := s.String()
	for _, want := range []string{"TABLE t", "tenant_id BIGINT", "msg VARCHAR", "TENANT KEY tenant_id", "TIME KEY ts"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestDefaultIndex(t *testing.T) {
	if DefaultIndex(String) != IndexInverted {
		t.Error("strings should default to inverted index")
	}
	if DefaultIndex(Int64) != IndexBKD {
		t.Error("ints should default to BKD index")
	}
	if DefaultIndex(ColumnType(9)) != IndexNone {
		t.Error("unknown types should default to no index")
	}
}

func TestValueBasics(t *testing.T) {
	a := IntValue(7)
	b := IntValue(9)
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("int compare broken")
	}
	x := StringValue("apple")
	y := StringValue("banana")
	if x.Compare(y) != -1 || y.Compare(x) != 1 || x.Compare(x) != 0 {
		t.Error("string compare broken")
	}
	if !a.Equal(IntValue(7)) || a.Equal(b) || a.Equal(x) {
		t.Error("Equal broken")
	}
	if a.String() != "7" || x.String() != "apple" {
		t.Error("String broken")
	}
}

func TestValueCompareKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind Compare should panic")
		}
	}()
	IntValue(1).Compare(StringValue("x"))
}

func TestRowConforms(t *testing.T) {
	s := validSchema()
	good := Row{IntValue(1), IntValue(2), StringValue("hello")}
	if err := good.Conforms(s); err != nil {
		t.Errorf("conforming row rejected: %v", err)
	}
	if err := (Row{IntValue(1)}).Conforms(s); err == nil {
		t.Error("short row accepted")
	}
	bad := Row{IntValue(1), StringValue("x"), StringValue("hello")}
	if err := bad.Conforms(s); err == nil {
		t.Error("kind-mismatched row accepted")
	}
	if good.Tenant(s) != 1 || good.Time(s) != 2 {
		t.Error("key extraction broken")
	}
}

func TestRowRoundTrip(t *testing.T) {
	f := func(i1, i2 int64, s1, s2 string) bool {
		row := Row{IntValue(i1), StringValue(s1), IntValue(i2), StringValue(s2)}
		raw := row.AppendTo(nil)
		got, n, err := DecodeRow(raw)
		if err != nil || n != len(raw) || len(got) != len(row) {
			return false
		}
		for i := range row {
			if !got[i].Equal(row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	if _, _, err := DecodeRow(nil); err == nil {
		t.Error("empty input should error")
	}
	row := Row{IntValue(42), StringValue("payload")}
	raw := row.AppendTo(nil)
	for cut := 1; cut < len(raw); cut++ {
		if _, _, err := DecodeRow(raw[:cut]); err == nil {
			t.Errorf("truncation to %d should error", cut)
		}
	}
	// Bad value kind.
	bad := []byte{1, 99}
	if _, _, err := DecodeRow(bad); err == nil {
		t.Error("bad kind should error")
	}
}

func TestRowSize(t *testing.T) {
	r := Row{IntValue(1), StringValue("hello")}
	if got := r.Size(); got < len("hello") {
		t.Errorf("Size = %d, implausibly small", got)
	}
}

func TestRequestLogSchema(t *testing.T) {
	s := RequestLogSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper schema invalid: %v", err)
	}
	// Paper: indexes are created for ALL columns.
	for _, c := range s.Columns {
		if c.Index == IndexNone {
			t.Errorf("column %s should be indexed", c.Name)
		}
		if want := DefaultIndex(c.Type); c.Index != want {
			t.Errorf("column %s index = %d, want %d", c.Name, c.Index, want)
		}
	}
}
