package schema

import (
	"fmt"

	"logstore/internal/bitutil"
)

// Value is one typed cell of a row: either an int64 or a string,
// discriminated by Kind.
type Value struct {
	Kind ColumnType
	I    int64
	S    string
}

// IntValue returns an Int64 value.
func IntValue(v int64) Value { return Value{Kind: Int64, I: v} }

// StringValue returns a String value.
func StringValue(s string) Value { return Value{Kind: String, S: s} }

// String renders the value for diagnostics and query results.
func (v Value) String() string {
	switch v.Kind {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case String:
		return v.S
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == Int64 {
		return v.I == o.I
	}
	return v.S == o.S
}

// Compare orders two values of the same kind: -1, 0, or +1.
// Comparing values of different kinds panics; the planner type-checks
// predicates before evaluation.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		panic(fmt.Sprintf("schema: comparing %v with %v", v.Kind, o.Kind))
	}
	switch v.Kind {
	case Int64:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	default:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
}

// Row is one log record: values positionally aligned with the schema's
// columns.
type Row []Value

// Size returns an approximate in-memory footprint in bytes, used by
// byte-bounded queues and the row store's flush thresholds.
func (r Row) Size() int {
	n := 0
	for _, v := range r {
		n += 16 // Value struct overhead approximation
		n += len(v.S)
	}
	return n
}

// EncodedSize returns the exact number of bytes AppendTo will produce,
// so batch encoders can pre-size their buffers and stay zero-alloc.
func (r Row) EncodedSize() int {
	n := bitutil.UvarintLen(uint64(len(r)))
	for _, v := range r {
		n++ // kind byte
		if v.Kind == Int64 {
			n += bitutil.VarintLen(v.I)
		} else {
			n += bitutil.UvarintLen(uint64(len(v.S))) + len(v.S)
		}
	}
	return n
}

// Tenant extracts the tenant id given the schema.
func (r Row) Tenant(s *Schema) int64 { return r[s.TenantIdx()].I }

// Time extracts the timestamp (ms) given the schema.
func (r Row) Time(s *Schema) int64 { return r[s.TimeIdx()].I }

// Conforms checks the row's arity and value kinds against the schema.
func (r Row) Conforms(s *Schema) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("schema: row has %d values, table %s has %d columns",
			len(r), s.Name, len(s.Columns))
	}
	for i, v := range r {
		if v.Kind != s.Columns[i].Type {
			return fmt.Errorf("schema: column %q: value kind %v, want %v",
				s.Columns[i].Name, v.Kind, s.Columns[i].Type)
		}
	}
	return nil
}

// AppendTo serializes the row (schema-relative, no self-description) for
// WAL records and replication messages.
func (r Row) AppendTo(dst []byte) []byte {
	dst = bitutil.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = append(dst, byte(v.Kind))
		if v.Kind == Int64 {
			dst = bitutil.AppendVarint(dst, v.I)
		} else {
			dst = bitutil.AppendLenString(dst, v.S)
		}
	}
	return dst
}

// DecodeRow reverses AppendTo, returning the row and bytes consumed.
func DecodeRow(data []byte) (Row, int, error) {
	nvals, off, err := bitutil.Uvarint(data)
	if err != nil {
		return nil, 0, fmt.Errorf("schema: row arity: %w", err)
	}
	if nvals > 1<<16 {
		return nil, 0, fmt.Errorf("schema: implausible row arity %d", nvals)
	}
	row := make(Row, 0, nvals)
	for i := uint64(0); i < nvals; i++ {
		if off >= len(data) {
			return nil, 0, fmt.Errorf("schema: row value %d truncated", i)
		}
		kind := ColumnType(data[off])
		off++
		switch kind {
		case Int64:
			v, n, err := bitutil.Varint(data[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("schema: row value %d: %w", i, err)
			}
			off += n
			row = append(row, IntValue(v))
		case String:
			s, n, err := bitutil.LenString(data[off:])
			if err != nil {
				return nil, 0, fmt.Errorf("schema: row value %d: %w", i, err)
			}
			off += n
			row = append(row, StringValue(s))
		default:
			return nil, 0, fmt.Errorf("schema: row value %d has bad kind %d", i, kind)
		}
	}
	return row, off, nil
}

// RequestLogSchema returns the sample table from the paper's evaluation
// (§6.1): application request logs partitioned by tenant_id and ts, with
// every column indexed.
func RequestLogSchema() *Schema {
	return &Schema{
		Name: "request_log",
		Columns: []Column{
			{Name: "tenant_id", Type: Int64, Index: IndexBKD},
			{Name: "ts", Type: Int64, Index: IndexBKD},
			{Name: "ip", Type: String, Index: IndexInverted},
			{Name: "api", Type: String, Index: IndexInverted},
			{Name: "latency", Type: Int64, Index: IndexBKD},
			{Name: "fail", Type: String, Index: IndexInverted},
			{Name: "log", Type: String, Index: IndexInverted},
		},
		TenantCol: "tenant_id",
		TimeCol:   "ts",
	}
}
