// Package schema defines the shared data model for LogStore: table
// schemas, typed column values, and log rows. It is the vocabulary used
// by the row store, the data builder, the LogBlock format, and the query
// engine.
//
// LogStore tables carry two scalar column types (the paper indexes string
// columns with an inverted index and numeric columns with a BKD tree):
// 64-bit integers and strings. Timestamps are int64 milliseconds since
// the Unix epoch in a designated timestamp column.
package schema

import (
	"fmt"
	"strings"

	"logstore/internal/bitutil"
)

// ColumnType enumerates LogStore's column types.
type ColumnType uint8

const (
	// Int64 is a 64-bit signed integer column (also used for timestamps).
	Int64 ColumnType = 1
	// String is a UTF-8 string column.
	String ColumnType = 2
)

// String returns the SQL-ish name of the type.
func (t ColumnType) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case String:
		return "VARCHAR"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// IndexKind describes which secondary index is built for a column inside
// a LogBlock. The paper builds indexes on all columns by default: an
// inverted index for strings and a BKD tree for numerics.
type IndexKind uint8

const (
	// IndexNone disables per-column indexing (SMA pruning still applies).
	IndexNone IndexKind = 0
	// IndexInverted is the full-text inverted index for string columns.
	IndexInverted IndexKind = 1
	// IndexBKD is the BKD tree index for numeric columns.
	IndexBKD IndexKind = 2
)

// Column describes one attribute of a log table.
type Column struct {
	Name  string
	Type  ColumnType
	Index IndexKind
}

// DefaultIndex returns the index kind the paper assigns to a column type:
// inverted for strings, BKD for numerics.
func DefaultIndex(t ColumnType) IndexKind {
	switch t {
	case String:
		return IndexInverted
	case Int64:
		return IndexBKD
	default:
		return IndexNone
	}
}

// Schema describes a log table. TenantCol and TimeCol name the partition
// keys: LogBlocks are organized by tenant and timestamp (paper §3.1).
type Schema struct {
	Name      string
	Columns   []Column
	TenantCol string
	TimeCol   string
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// TenantIdx returns the position of the tenant column.
func (s *Schema) TenantIdx() int { return s.ColumnIndex(s.TenantCol) }

// TimeIdx returns the position of the timestamp column.
func (s *Schema) TimeIdx() int { return s.ColumnIndex(s.TimeCol) }

// Validate checks structural invariants: nonempty name, at least one
// column, unique column names, and resolvable tenant/time columns of
// integer type.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("schema %s: no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema %s: empty column name", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("schema %s: duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Type != Int64 && c.Type != String {
			return fmt.Errorf("schema %s: column %q has invalid type %d", s.Name, c.Name, c.Type)
		}
	}
	for _, key := range []struct{ role, name string }{
		{"tenant", s.TenantCol},
		{"time", s.TimeCol},
	} {
		idx := s.ColumnIndex(key.name)
		if idx < 0 {
			return fmt.Errorf("schema %s: %s column %q not found", s.Name, key.role, key.name)
		}
		if s.Columns[idx].Type != Int64 {
			return fmt.Errorf("schema %s: %s column %q must be BIGINT", s.Name, key.role, key.name)
		}
	}
	return nil
}

// String renders the schema as a CREATE TABLE-ish description.
func (s *Schema) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TABLE %s (", s.Name)
	for i, c := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", c.Name, c.Type)
	}
	fmt.Fprintf(&sb, ") TENANT KEY %s TIME KEY %s", s.TenantCol, s.TimeCol)
	return sb.String()
}

// Marshal serializes the schema for embedding in a LogBlock header
// (LogBlocks are self-contained: they carry their full schema).
func (s *Schema) Marshal() []byte {
	var buf []byte
	buf = bitutil.AppendLenString(buf, s.Name)
	buf = bitutil.AppendLenString(buf, s.TenantCol)
	buf = bitutil.AppendLenString(buf, s.TimeCol)
	buf = bitutil.AppendUvarint(buf, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		buf = bitutil.AppendLenString(buf, c.Name)
		buf = append(buf, byte(c.Type), byte(c.Index))
	}
	return buf
}

// UnmarshalSchema reverses Marshal and returns the bytes consumed.
func UnmarshalSchema(data []byte) (*Schema, int, error) {
	s := &Schema{}
	off := 0
	var err error
	var n int
	if s.Name, n, err = bitutil.LenString(data[off:]); err != nil {
		return nil, 0, fmt.Errorf("schema: name: %w", err)
	}
	off += n
	if s.TenantCol, n, err = bitutil.LenString(data[off:]); err != nil {
		return nil, 0, fmt.Errorf("schema: tenant col: %w", err)
	}
	off += n
	if s.TimeCol, n, err = bitutil.LenString(data[off:]); err != nil {
		return nil, 0, fmt.Errorf("schema: time col: %w", err)
	}
	off += n
	ncols, n, err := bitutil.Uvarint(data[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("schema: column count: %w", err)
	}
	off += n
	if ncols > 1<<16 {
		return nil, 0, fmt.Errorf("schema: implausible column count %d", ncols)
	}
	s.Columns = make([]Column, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		name, n, err := bitutil.LenString(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("schema: column %d name: %w", i, err)
		}
		off += n
		if off+2 > len(data) {
			return nil, 0, fmt.Errorf("schema: column %d type truncated", i)
		}
		s.Columns = append(s.Columns, Column{
			Name:  name,
			Type:  ColumnType(data[off]),
			Index: IndexKind(data[off+1]),
		})
		off += 2
	}
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	return s, off, nil
}
