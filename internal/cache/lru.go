// Package cache implements LogStore's multi-level data cache (paper
// §5.2, Figure 9): an object cache for decoded structures (LogBlock
// metas, index segments), a byte-bounded memory block cache for file
// blocks ranged out of OSS, and an SSD block cache the memory level
// spills into. The block manager — eviction and level swapping — is the
// LRU machinery in this file.
package cache

import (
	"container/list"
	"sync"
)

// EvictFunc is called with entries evicted from an LRU (outside the
// cache lock is NOT guaranteed; keep callbacks cheap or dispatch async).
type EvictFunc func(key string, value any, size int64)

// LRU is a byte-bounded least-recently-used cache. It is safe for
// concurrent use.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element
	onEvict  EvictFunc

	hits   int64
	misses int64
}

type lruEntry struct {
	key   string
	value any
	size  int64
}

// NewLRU returns an LRU bounded to capacity bytes. capacity <= 0 means
// the cache stores nothing (every Put is immediately evicted).
func NewLRU(capacity int64, onEvict EvictFunc) *LRU {
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		onEvict:  onEvict,
	}
}

// Get returns the cached value and marks it recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry).value, true
	}
	c.misses++
	return nil, false
}

// Contains reports presence without updating recency or hit counters.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates an entry, evicting LRU entries as needed.
// Entries larger than the whole capacity are rejected (evicted
// immediately via the callback rather than silently dropped).
func (c *LRU) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	var evicted []*lruEntry
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*lruEntry)
		c.used -= old.size
		old.value = value
		old.size = size
		c.used += size
		c.ll.MoveToFront(el)
	} else {
		e := &lruEntry{key: key, value: value, size: size}
		c.items[key] = c.ll.PushFront(e)
		c.used += size
	}
	for c.used > c.capacity && c.ll.Len() > 0 {
		back := c.ll.Back()
		e := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.size
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.value, e.size)
		}
	}
}

// Remove deletes an entry without invoking the eviction callback.
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.used -= e.size
	}
}

// Len returns the number of entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Used returns the bytes currently held.
func (c *LRU) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns cumulative hits and misses.
func (c *LRU) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge drops every entry without eviction callbacks.
func (c *LRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}
