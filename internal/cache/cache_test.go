package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU(100, nil)
	c.Put("a", []byte("aaa"), 30)
	c.Put("b", []byte("bbb"), 30)
	if v, ok := c.Get("a"); !ok || string(v.([]byte)) != "aaa" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if c.Len() != 2 || c.Used() != 60 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.Used())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if _, ok := c.Get("zz"); ok {
		t.Error("missing key hit")
	}
	_, misses = c.Stats()
	if misses != 1 {
		t.Errorf("misses = %d", misses)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	var evicted []string
	c := NewLRU(100, func(key string, _ any, _ int64) {
		evicted = append(evicted, key)
	})
	c.Put("a", nil, 40)
	c.Put("b", nil, 40)
	c.Get("a")          // a is now MRU
	c.Put("c", nil, 40) // evicts b (LRU)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if !c.Contains("a") || !c.Contains("c") || c.Contains("b") {
		t.Error("wrong survivors")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(100, nil)
	c.Put("a", "v1", 10)
	c.Put("a", "v2", 50)
	if c.Used() != 50 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d after update", c.Used(), c.Len())
	}
	if v, _ := c.Get("a"); v != "v2" {
		t.Errorf("Get = %v", v)
	}
}

func TestLRUOversizedEntry(t *testing.T) {
	var evicted []string
	c := NewLRU(50, func(key string, _ any, _ int64) { evicted = append(evicted, key) })
	c.Put("huge", nil, 100)
	if c.Len() != 0 {
		t.Error("oversized entry should not remain")
	}
	if len(evicted) != 1 || evicted[0] != "huge" {
		t.Errorf("evicted = %v", evicted)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0, nil)
	c.Put("a", nil, 1)
	if c.Len() != 0 {
		t.Error("zero-capacity cache must stay empty")
	}
}

func TestLRURemoveAndPurge(t *testing.T) {
	evictions := 0
	c := NewLRU(100, func(string, any, int64) { evictions++ })
	c.Put("a", nil, 10)
	c.Put("b", nil, 10)
	c.Remove("a")
	if c.Contains("a") || c.Used() != 10 {
		t.Error("Remove broken")
	}
	c.Purge()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("Purge broken")
	}
	if evictions != 0 {
		t.Error("Remove/Purge must not fire eviction callbacks")
	}
	c.Remove("never") // no-op
}

func TestLRUNegativeSizeClamped(t *testing.T) {
	c := NewLRU(10, nil)
	c.Put("a", nil, -5)
	if c.Used() != 0 {
		t.Errorf("Used = %d", c.Used())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1<<20, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*500+i)%100)
				c.Put(key, i, 64)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
}

func TestBlockCacheMemoryOnly(t *testing.T) {
	bc, err := NewBlockCache(BlockCacheConfig{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bc.Put("k", []byte("data"))
	got, ok := bc.Get("k")
	if !ok || string(got) != "data" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := bc.Get("missing"); ok {
		t.Error("missing hit")
	}
	if bc.DiskUsed() != 0 {
		t.Error("no disk level configured")
	}
}

func TestBlockCacheDiskConfigValidation(t *testing.T) {
	if _, err := NewBlockCache(BlockCacheConfig{MemoryBytes: 1, DiskBytes: 1}); err == nil {
		t.Error("DiskBytes without DiskDir should error")
	}
}

func TestBlockCacheSpillToDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ssd")
	bc, err := NewBlockCache(BlockCacheConfig{
		MemoryBytes: 100,
		DiskBytes:   10000,
		DiskDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	blockA := bytes.Repeat([]byte("A"), 80)
	blockB := bytes.Repeat([]byte("B"), 80)
	bc.Put("a", blockA)
	bc.Put("b", blockB) // evicts a from memory -> spills to disk
	if bc.MemoryUsed() > 100 {
		t.Errorf("memory over budget: %d", bc.MemoryUsed())
	}
	if bc.DiskUsed() != 80 {
		t.Errorf("DiskUsed = %d, want 80 (spilled block)", bc.DiskUsed())
	}
	// Disk hit is promoted back to memory (evicting b this time).
	got, ok := bc.Get("a")
	if !ok || !bytes.Equal(got, blockA) {
		t.Fatalf("disk-level Get(a) = %v, %v", ok, got)
	}
	if got2, ok := bc.Get("a"); !ok || !bytes.Equal(got2, blockA) {
		t.Fatal("promoted block should hit memory")
	}
}

func TestBlockCacheDiskEviction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ssd")
	bc, err := NewBlockCache(BlockCacheConfig{
		MemoryBytes: 50,
		DiskBytes:   150,
		DiskDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Push four 60-byte blocks: each Put evicts the previous one from
	// memory to disk; the disk holds at most two (150/60).
	for i := 0; i < 4; i++ {
		bc.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte('0' + i)}, 60))
	}
	if bc.DiskUsed() > 150 {
		t.Errorf("disk over budget: %d", bc.DiskUsed())
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 2 {
		t.Errorf("disk dir holds %d files, capacity allows 2", len(files))
	}
	// The oldest spilled block is gone from both levels.
	if _, ok := bc.Get("k0"); ok {
		t.Error("k0 should have been evicted from disk")
	}
}

func TestBlockCachePurge(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ssd")
	bc, err := NewBlockCache(BlockCacheConfig{MemoryBytes: 100, DiskBytes: 1000, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	bc.Put("a", bytes.Repeat([]byte("a"), 80))
	bc.Put("b", bytes.Repeat([]byte("b"), 80)) // spills a
	bc.Purge()
	if bc.MemoryUsed() != 0 || bc.DiskUsed() != 0 {
		t.Error("Purge left residue")
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 0 {
		t.Errorf("Purge left %d files on disk", len(files))
	}
	if _, ok := bc.Get("a"); ok {
		t.Error("purged block still readable")
	}
}

func TestBlockCacheStats(t *testing.T) {
	bc, err := NewBlockCache(BlockCacheConfig{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bc.Put("k", []byte("v"))
	bc.Get("k")
	bc.Get("nope")
	memHits, memMisses, _, _ := bc.Stats()
	if memHits != 1 || memMisses != 1 {
		t.Errorf("stats = %d/%d", memHits, memMisses)
	}
}

func TestObjectCache(t *testing.T) {
	oc := NewObjectCache(1000)
	type parsed struct{ n int }
	oc.Put("meta:1", &parsed{n: 42}, 100)
	v, ok := oc.Get("meta:1")
	if !ok || v.(*parsed).n != 42 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	hits, misses := oc.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	oc.Purge()
	if _, ok := oc.Get("meta:1"); ok {
		t.Error("purged object still cached")
	}
}

func TestBlockCacheResetsStaleDiskDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ssd")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "stale")
	if err := os.WriteFile(stale, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockCache(BlockCacheConfig{MemoryBytes: 10, DiskBytes: 100, DiskDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale disk cache content should be removed at startup")
	}
}

func BenchmarkLRUPutGet(b *testing.B) {
	c := NewLRU(1<<26, nil)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("obj/%d/block/%d", i%32, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		c.Put(k, k, 1024)
		c.Get(k)
	}
}

func TestBlockCacheDegradesWhenDiskDirUnusable(t *testing.T) {
	// A regular file where the cache directory should go: RemoveAll
	// succeeds but MkdirAll-then-write cannot produce a usable dir when
	// the parent path is a file.
	parent := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bc, err := NewBlockCache(BlockCacheConfig{
		MemoryBytes: 1 << 20,
		DiskBytes:   1 << 20,
		DiskDir:     filepath.Join(parent, "ssd"),
	})
	if err != nil {
		t.Fatalf("unusable disk dir errored instead of degrading: %v", err)
	}
	if !bc.Degraded() {
		t.Error("cache not marked degraded")
	}
	// Memory-only service still works.
	bc.Put("k", []byte("data"))
	if got, ok := bc.Get("k"); !ok || string(got) != "data" {
		t.Fatalf("degraded Get = %q, %v", got, ok)
	}
	if bc.DiskUsed() != 0 {
		t.Error("degraded cache reports disk usage")
	}
}

func TestBlockCacheDisablesDiskAfterSpillFailures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ssd")
	bc, err := NewBlockCache(BlockCacheConfig{
		MemoryBytes: 100,
		DiskBytes:   1 << 20,
		DiskDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Yank the SSD out from under the cache; every spill now fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= diskSpillFailureLimit+2; i++ {
		// Each 80-byte Put evicts the previous block to the dead disk.
		bc.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 80))
	}
	if !bc.Degraded() {
		t.Error("disk level not disabled after repeated spill failures")
	}
	// Reads keep working from memory, writes keep landing there.
	bc.Put("live", []byte("still here"))
	if got, ok := bc.Get("live"); !ok || string(got) != "still here" {
		t.Fatalf("memory level broken after disk death: %q, %v", got, ok)
	}
}
