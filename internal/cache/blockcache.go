package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// BlockCache is the two-level file-block cache from Figure 9: a memory
// LRU in front of an optional disk ("SSD") LRU. Blocks evicted from
// memory spill to disk; disk hits are promoted back into memory.
type BlockCache struct {
	mem  *LRU
	disk *diskCache
}

// BlockCacheConfig sizes the cache levels. The paper's production
// deployment uses 8 GB memory and 200 GB SSD per worker; experiments
// here scale those down.
type BlockCacheConfig struct {
	MemoryBytes int64
	DiskBytes   int64  // 0 disables the disk level
	DiskDir     string // required when DiskBytes > 0
}

// NewBlockCache builds the cache. The disk directory is created if
// missing and stale content in it is removed.
func NewBlockCache(cfg BlockCacheConfig) (*BlockCache, error) {
	bc := &BlockCache{}
	if cfg.DiskBytes > 0 {
		if cfg.DiskDir == "" {
			return nil, fmt.Errorf("cache: DiskBytes set but DiskDir empty")
		}
		if err := os.RemoveAll(cfg.DiskDir); err != nil {
			return nil, fmt.Errorf("cache: reset disk dir: %w", err)
		}
		if err := os.MkdirAll(cfg.DiskDir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: create disk dir: %w", err)
		}
		bc.disk = newDiskCache(cfg.DiskDir, cfg.DiskBytes)
	}
	bc.mem = NewLRU(cfg.MemoryBytes, func(key string, value any, size int64) {
		// Memory eviction spills to the SSD level.
		if bc.disk != nil {
			bc.disk.put(key, value.([]byte))
		}
	})
	return bc, nil
}

// Get returns a cached block. Disk hits are promoted to memory.
func (bc *BlockCache) Get(key string) ([]byte, bool) {
	if v, ok := bc.mem.Get(key); ok {
		return v.([]byte), true
	}
	if bc.disk != nil {
		if data, ok := bc.disk.get(key); ok {
			bc.mem.Put(key, data, int64(len(data)))
			return data, true
		}
	}
	return nil, false
}

// Put inserts a block into the memory level.
func (bc *BlockCache) Put(key string, data []byte) {
	bc.mem.Put(key, data, int64(len(data)))
}

// Stats returns hit/miss counts of the memory level and, when present,
// the disk level.
func (bc *BlockCache) Stats() (memHits, memMisses, diskHits, diskMisses int64) {
	memHits, memMisses = bc.mem.Stats()
	if bc.disk != nil {
		diskHits, diskMisses = bc.disk.idx.Stats()
	}
	return
}

// MemoryUsed returns bytes resident in the memory level.
func (bc *BlockCache) MemoryUsed() int64 { return bc.mem.Used() }

// DiskUsed returns bytes resident in the disk level.
func (bc *BlockCache) DiskUsed() int64 {
	if bc.disk == nil {
		return 0
	}
	return bc.disk.idx.Used()
}

// Purge drops both levels.
func (bc *BlockCache) Purge() {
	bc.mem.Purge()
	if bc.disk != nil {
		bc.disk.purge()
	}
}

// diskCache is the SSD level: an LRU index over files in a directory.
type diskCache struct {
	dir string
	idx *LRU
	mu  sync.Mutex // serializes file writes/removes against purge
}

func newDiskCache(dir string, capacity int64) *diskCache {
	d := &diskCache{dir: dir}
	d.idx = NewLRU(capacity, func(key string, value any, size int64) {
		// Index eviction deletes the backing file.
		_ = os.Remove(value.(string))
	})
	return d
}

func (d *diskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16]))
}

func (d *diskCache) put(key string, data []byte) {
	p := d.path(key)
	d.mu.Lock()
	err := os.WriteFile(p, data, 0o644)
	d.mu.Unlock()
	if err != nil {
		return // a failed spill is only a lost cache opportunity
	}
	d.idx.Put(key, p, int64(len(data)))
}

func (d *diskCache) get(key string) ([]byte, bool) {
	v, ok := d.idx.Get(key)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(v.(string))
	if err != nil {
		d.idx.Remove(key)
		return nil, false
	}
	return data, true
}

func (d *diskCache) purge() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.idx.Purge()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		_ = os.Remove(filepath.Join(d.dir, e.Name()))
	}
}

// ObjectCache caches decoded structures (parsed metas, opened index
// segments) so hot-path queries skip re-parsing — the paper adds this
// level explicitly to cut allocation churn.
type ObjectCache struct {
	lru *LRU
}

// NewObjectCache returns an object cache bounded to capacity bytes of
// caller-estimated sizes.
func NewObjectCache(capacity int64) *ObjectCache {
	return &ObjectCache{lru: NewLRU(capacity, nil)}
}

// Get returns a cached object.
func (c *ObjectCache) Get(key string) (any, bool) { return c.lru.Get(key) }

// Put caches an object with the caller's size estimate.
func (c *ObjectCache) Put(key string, value any, size int64) { c.lru.Put(key, value, size) }

// Stats returns hit/miss counts.
func (c *ObjectCache) Stats() (hits, misses int64) { return c.lru.Stats() }

// Purge drops everything.
func (c *ObjectCache) Purge() { c.lru.Purge() }
