package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// BlockCache is the two-level file-block cache from Figure 9: a memory
// LRU in front of an optional disk ("SSD") LRU. Blocks evicted from
// memory spill to disk; disk hits are promoted back into memory.
//
// The disk level is an optimization, never a dependency: if its
// directory cannot be prepared, or its writes start failing (full or
// yanked SSD), the cache degrades to memory-only and keeps serving —
// a broken cache level must not error the query path.
type BlockCache struct {
	mem      *LRU
	disk     *diskCache
	degraded bool // disk level requested but unusable at construction
}

// BlockCacheConfig sizes the cache levels. The paper's production
// deployment uses 8 GB memory and 200 GB SSD per worker; experiments
// here scale those down.
type BlockCacheConfig struct {
	MemoryBytes int64
	DiskBytes   int64  // 0 disables the disk level
	DiskDir     string // required when DiskBytes > 0
}

// NewBlockCache builds the cache. The disk directory is created if
// missing and stale content in it is removed. A disk level that cannot
// be set up (unwritable path, missing mount) degrades the cache to
// memory-only rather than failing construction; DiskBytes without a
// DiskDir stays a configuration error.
func NewBlockCache(cfg BlockCacheConfig) (*BlockCache, error) {
	bc := &BlockCache{}
	if cfg.DiskBytes > 0 {
		if cfg.DiskDir == "" {
			return nil, fmt.Errorf("cache: DiskBytes set but DiskDir empty")
		}
		if err := resetDir(cfg.DiskDir); err != nil {
			bc.degraded = true
		} else {
			bc.disk = newDiskCache(cfg.DiskDir, cfg.DiskBytes)
		}
	}
	bc.mem = NewLRU(cfg.MemoryBytes, func(key string, value any, size int64) {
		// Memory eviction spills to the SSD level.
		if bc.disk != nil {
			bc.disk.put(key, value.([]byte))
		}
	})
	return bc, nil
}

// resetDir prepares an empty, writable cache directory, verifying
// writability with a probe file (MkdirAll succeeds on an existing but
// read-only directory).
func resetDir(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe := filepath.Join(dir, ".probe")
	if err := os.WriteFile(probe, nil, 0o644); err != nil {
		return err
	}
	return os.Remove(probe)
}

// Degraded reports whether a requested disk level is out of service —
// either unusable at construction or disabled after repeated write
// failures — leaving the cache memory-only.
func (bc *BlockCache) Degraded() bool {
	if bc.degraded {
		return true
	}
	return bc.disk != nil && bc.disk.disabled()
}

// Get returns a cached block. Disk hits are promoted to memory.
func (bc *BlockCache) Get(key string) ([]byte, bool) {
	if v, ok := bc.mem.Get(key); ok {
		return v.([]byte), true
	}
	if bc.disk != nil {
		if data, ok := bc.disk.get(key); ok {
			bc.mem.Put(key, data, int64(len(data)))
			return data, true
		}
	}
	return nil, false
}

// Put inserts a block into the memory level.
func (bc *BlockCache) Put(key string, data []byte) {
	bc.mem.Put(key, data, int64(len(data)))
}

// Stats returns hit/miss counts of the memory level and, when present,
// the disk level.
func (bc *BlockCache) Stats() (memHits, memMisses, diskHits, diskMisses int64) {
	memHits, memMisses = bc.mem.Stats()
	if bc.disk != nil {
		diskHits, diskMisses = bc.disk.idx.Stats()
	}
	return
}

// MemoryUsed returns bytes resident in the memory level.
func (bc *BlockCache) MemoryUsed() int64 { return bc.mem.Used() }

// DiskUsed returns bytes resident in the disk level.
func (bc *BlockCache) DiskUsed() int64 {
	if bc.disk == nil {
		return 0
	}
	return bc.disk.idx.Used()
}

// Purge drops both levels.
func (bc *BlockCache) Purge() {
	bc.mem.Purge()
	if bc.disk != nil {
		bc.disk.purge()
	}
}

// diskSpillFailureLimit is how many consecutive failed spill writes
// take the disk level out of service. One failure can be a transient
// blip; a run of them means the SSD is full or gone, and every further
// spill would just burn a syscall on the eviction path.
const diskSpillFailureLimit = 8

// diskCache is the SSD level: an LRU index over files in a directory.
type diskCache struct {
	dir string
	idx *LRU
	mu  sync.Mutex // serializes file writes/removes against purge

	writeFails atomic.Int64 // consecutive spill failures
	down       atomic.Bool  // level disabled after too many failures
}

func newDiskCache(dir string, capacity int64) *diskCache {
	d := &diskCache{dir: dir}
	d.idx = NewLRU(capacity, func(key string, value any, size int64) {
		// Index eviction deletes the backing file.
		_ = os.Remove(value.(string))
	})
	return d
}

func (d *diskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:16]))
}

func (d *diskCache) disabled() bool { return d.down.Load() }

func (d *diskCache) put(key string, data []byte) {
	if d.down.Load() {
		return
	}
	p := d.path(key)
	d.mu.Lock()
	err := os.WriteFile(p, data, 0o644)
	d.mu.Unlock()
	if err != nil {
		// A failed spill is only a lost cache opportunity — but a run
		// of them means the disk is gone; stop trying.
		if d.writeFails.Add(1) >= diskSpillFailureLimit {
			d.down.Store(true)
		}
		return
	}
	d.writeFails.Store(0)
	d.idx.Put(key, p, int64(len(data)))
}

func (d *diskCache) get(key string) ([]byte, bool) {
	v, ok := d.idx.Get(key)
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(v.(string))
	if err != nil {
		d.idx.Remove(key)
		return nil, false
	}
	return data, true
}

func (d *diskCache) purge() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.idx.Purge()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		_ = os.Remove(filepath.Join(d.dir, e.Name()))
	}
}

// ObjectCache caches decoded structures (parsed metas, opened index
// segments) so hot-path queries skip re-parsing — the paper adds this
// level explicitly to cut allocation churn.
type ObjectCache struct {
	lru *LRU
}

// NewObjectCache returns an object cache bounded to capacity bytes of
// caller-estimated sizes.
func NewObjectCache(capacity int64) *ObjectCache {
	return &ObjectCache{lru: NewLRU(capacity, nil)}
}

// Get returns a cached object.
func (c *ObjectCache) Get(key string) (any, bool) { return c.lru.Get(key) }

// Put caches an object with the caller's size estimate.
func (c *ObjectCache) Put(key string, value any, size int64) { c.lru.Put(key, value, size) }

// Stats returns hit/miss counts.
func (c *ObjectCache) Stats() (hits, misses int64) { return c.lru.Stats() }

// Used reports the bytes currently charged to the cache.
func (c *ObjectCache) Used() int64 { return c.lru.Used() }

// Purge drops everything.
func (c *ObjectCache) Purge() { c.lru.Purge() }
