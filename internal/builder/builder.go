// Package builder implements LogStore's phase-two data builder (paper
// §3.1, §3.4): it drains sealed row-store segments, splits them by
// tenant, encodes each tenant's run into columnar LogBlocks (with
// inverted/BKD indexes and SMA statistics), uploads them to object
// storage, and registers them in the metadata catalog. It also runs the
// LogBlock compaction task that merges small adjacent blocks.
//
// The builder is fault-tolerant by construction. Object storage
// throttles and fails transiently under multi-tenant load, so every
// OSS operation goes through a retrying store (exponential backoff
// with full jitter behind a circuit breaker; see internal/retry), and
// the archive commit is idempotent and atomic:
//
//  1. the packed LogBlock's key is derived from its content
//     (tenant, min timestamp, FNV-64a fingerprint of the packed
//     bytes), so re-archiving the same segment reproduces the same
//     key instead of a duplicate object;
//  2. the object is uploaded first, while it is still invisible —
//     nothing reads a key the catalog does not hold;
//  3. catalog registration is the single commit point, performed
//     last. A crash or exhausted retry before registration leaves at
//     worst an unregistered (invisible) object for SweepOrphans, and
//     the segment is re-drained later: the catalog/Head dedup checks
//     then skip the work already done.
//
// A segment is released from the row store only after every one of its
// LogBlocks has committed, so no row is dropped before it is durable
// and visible on object storage.
package builder

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"logstore/internal/compress"
	"logstore/internal/logblock"
	"logstore/internal/meta"
	"logstore/internal/metrics"
	"logstore/internal/oss"
	"logstore/internal/retry"
	"logstore/internal/rowstore"
	"logstore/internal/schema"
)

// Config configures a Builder.
type Config struct {
	// Table is the OSS directory all of this builder's LogBlocks live
	// under ("" = the schema's table name).
	Table string
	// MaxRowsPerBlock caps one LogBlock's row count; a tenant's run in
	// a segment is chunked at this size (0 = 1_000_000).
	MaxRowsPerBlock int
	// BlockRows is the column-block size inside a LogBlock
	// (0 = logblock.DefaultBlockRows).
	BlockRows int
	// Codec is the column-block compression codec (zero = default).
	Codec compress.Codec
	// NoIndexes suppresses index members (ablation experiments).
	NoIndexes bool
	// Retry overrides the store retry policy (nil = oss default).
	// The builder always wraps its store with retries; passing an
	// already-wrapped *oss.RetryingStore keeps that wrapper.
	Retry *retry.Policy
}

// Builder converts row-store segments into LogBlocks on object storage.
// Safe for concurrent use; drains and compactions of the same tenant
// should still be serialized by the caller (the worker's archive mutex)
// to avoid wasted duplicate work.
type Builder struct {
	cfg     Config
	sch     *schema.Schema
	store   oss.Store
	catalog *meta.Manager

	// pending tracks keys uploaded but not yet registered, so an
	// orphan sweep never deletes an in-flight commit.
	mu      sync.Mutex
	pending map[string]struct{}

	blocksBuilt  metrics.Counter
	rowsArchived metrics.Counter
	dedupSkips   metrics.Counter
}

// New constructs a builder. The store is wrapped with retries (unless
// it already is); the catalog is the cluster's metadata manager.
func New(cfg Config, sch *schema.Schema, store oss.Store, catalog *meta.Manager) (*Builder, error) {
	if sch == nil {
		return nil, fmt.Errorf("builder: nil schema")
	}
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("builder: nil store")
	}
	if catalog == nil {
		return nil, fmt.Errorf("builder: nil catalog")
	}
	if cfg.Table == "" {
		cfg.Table = sch.Name
	}
	if cfg.MaxRowsPerBlock <= 0 {
		cfg.MaxRowsPerBlock = 1_000_000
	}
	policy := oss.DefaultRetryPolicy()
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	return &Builder{
		cfg:     cfg,
		sch:     sch,
		store:   oss.WithRetry(store, policy),
		catalog: catalog,
		pending: make(map[string]struct{}),
	}, nil
}

// Store returns the builder's (retry-wrapped) object store.
func (b *Builder) Store() oss.Store { return b.store }

// Table returns the OSS directory the builder archives under.
func (b *Builder) Table() string { return b.cfg.Table }

// Stats reports LogBlocks committed, rows archived, and commits skipped
// by the idempotence checks (re-drained data already on OSS).
func (b *Builder) Stats() (blocks, rows, dedupSkips int64) {
	return b.blocksBuilt.Value(), b.rowsArchived.Value(), b.dedupSkips.Value()
}

// DrainStore seals the row store's active segment and archives every
// sealed segment to object storage, releasing each segment only after
// all of its LogBlocks have committed. It returns the number of
// LogBlocks newly committed. On error the failed segment (and any
// after it) stays sealed in the row store; a later drain retries it and
// the content-derived keys deduplicate whatever had already committed.
func (b *Builder) DrainStore(rs *rowstore.Store) (int, error) {
	rs.Seal()
	return b.DrainSegments(rs, rs.Sealed())
}

// DrainSegments archives an explicit list of already-sealed segments.
// The worker uses it when the seal and the segment snapshot must happen
// under the shard's apply lock (so the archived row set and the
// recorded raft applied-index agree exactly — a segment auto-sealed by
// a concurrent apply must wait for the next drain), while the slow OSS
// uploads stay outside the lock.
func (b *Builder) DrainSegments(rs *rowstore.Store, segs []*rowstore.Segment) (int, error) {
	committed := 0
	for _, seg := range segs {
		n, err := b.archiveSegment(seg)
		committed += n
		if err != nil {
			return committed, fmt.Errorf("builder: segment %d: %w", seg.ID, err)
		}
		rs.Release(seg.ID)
	}
	return committed, nil
}

// archiveSegment splits one sealed segment by tenant and commits each
// tenant's chunks. Returns how many LogBlocks were newly committed.
func (b *Builder) archiveSegment(seg *rowstore.Segment) (int, error) {
	tenantIdx := b.sch.TenantIdx()
	timeIdx := b.sch.TimeIdx()
	byTenant := make(map[int64][]schema.Row)
	var order []int64
	for _, r := range seg.Rows {
		t := r[tenantIdx].I
		if _, ok := byTenant[t]; !ok {
			order = append(order, t)
		}
		byTenant[t] = append(byTenant[t], r)
	}
	// Deterministic tenant order keeps re-drains byte-identical.
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	committed := 0
	for _, tenant := range order {
		rows := byTenant[tenant]
		// Sort by time before chunking so every chunk covers a
		// contiguous time range (LogBlocks are stored in chronological
		// order per tenant, paper §3.1) and chunk contents are
		// deterministic.
		sort.SliceStable(rows, func(i, j int) bool {
			return rows[i][timeIdx].I < rows[j][timeIdx].I
		})
		for start := 0; start < len(rows); start += b.cfg.MaxRowsPerBlock {
			end := start + b.cfg.MaxRowsPerBlock
			if end > len(rows) {
				end = len(rows)
			}
			fresh, err := b.commitChunk(tenant, rows[start:end])
			if err != nil {
				return committed, fmt.Errorf("tenant %d: %w", tenant, err)
			}
			if fresh {
				committed++
			}
		}
	}
	return committed, nil
}

// buildOptions maps the config onto logblock build options.
func (b *Builder) buildOptions() logblock.BuildOptions {
	return logblock.BuildOptions{
		Codec:     b.cfg.Codec,
		BlockRows: b.cfg.BlockRows,
		NoIndexes: b.cfg.NoIndexes,
	}
}

// blockKey derives the content-addressed object key: the tenant's OSS
// directory, the block's minimum timestamp (chronological listing), and
// the FNV-64a fingerprint of the packed bytes. Identical content maps
// to an identical key, which is what makes the archive commit
// idempotent across retries, crashes, and re-drained segments.
func (b *Builder) blockKey(tenant, minTS int64, packed []byte) string {
	h := fnv.New64a()
	h.Write(packed)
	return fmt.Sprintf("%slogblock-%016d-%016x.tar",
		meta.TenantPrefix(b.cfg.Table, tenant), minTS, h.Sum64())
}

// commitChunk archives one tenant's row chunk as a LogBlock using the
// idempotent upload-then-register protocol. It reports whether a new
// block was committed (false = deduplicated against a prior commit).
func (b *Builder) commitChunk(tenant int64, rows []schema.Row) (bool, error) {
	built, err := logblock.Build(b.sch, rows, b.buildOptions())
	if err != nil {
		return false, err
	}
	packed, err := built.Pack()
	if err != nil {
		return false, err
	}
	key := b.blockKey(tenant, built.Meta.MinTS, packed)

	// Dedup check 1: already registered — the commit completed in a
	// previous drain (e.g. the crash happened after registration but
	// before the segment was released). Nothing to do.
	if b.catalog.Has(tenant, key) {
		b.dedupSkips.Inc()
		return false, nil
	}

	b.mu.Lock()
	b.pending[key] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.pending, key)
		b.mu.Unlock()
	}()

	// Dedup check 2: uploaded but never registered (crash between
	// upload and commit). The key is content-derived, so a size match
	// means the bytes are already there; skip straight to registration.
	uploaded := false
	if info, err := b.store.Head(key); err == nil && info.Size == int64(len(packed)) {
		uploaded = true
		b.dedupSkips.Inc()
	}
	if !uploaded {
		// Upload first: the object is invisible until registered, so a
		// failure here never exposes a partial LogBlock.
		if err := b.store.Put(key, packed); err != nil {
			return false, fmt.Errorf("upload %s: %w", key, err)
		}
	}

	// Commit point: catalog registration makes the block visible.
	info := meta.BlockInfo{
		Tenant:    tenant,
		Path:      key,
		MinTS:     built.Meta.MinTS,
		MaxTS:     built.Meta.MaxTS,
		Rows:      int64(len(rows)),
		Bytes:     int64(len(packed)),
		CreatedMS: time.Now().UnixMilli(),
	}
	if err := b.catalog.Register(info); err != nil {
		return false, fmt.Errorf("register %s: %w", key, err)
	}
	b.blocksBuilt.Inc()
	b.rowsArchived.Add(int64(len(rows)))
	return true, nil
}
