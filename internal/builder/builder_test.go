package builder_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"logstore/internal/builder"
	"logstore/internal/logblock"
	"logstore/internal/meta"
	"logstore/internal/oss"
	"logstore/internal/retry"
	"logstore/internal/rowstore"
	"logstore/internal/schema"
	"logstore/internal/workload"
)

// fastRetry keeps failure-path tests quick.
func fastRetry() *retry.Policy {
	return &retry.Policy{
		MaxAttempts:    4,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		Seed:           11,
		Classify:       oss.ClassifyError,
	}
}

func newBuilder(t *testing.T, cfg builder.Config, store oss.Store) (*builder.Builder, *meta.Manager) {
	t.Helper()
	catalog := meta.NewManager()
	b, err := builder.New(cfg, schema.RequestLogSchema(), store, catalog)
	if err != nil {
		t.Fatal(err)
	}
	return b, catalog
}

func newRowStore(t *testing.T) *rowstore.Store {
	t.Helper()
	rs, err := rowstore.New(schema.RequestLogSchema(), rowstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// genRows produces a deterministic batch and its per-tenant row counts.
func genRows(t *testing.T, n, tenants int, seed int64) ([]schema.Row, map[int64]int) {
	t.Helper()
	g := workload.NewGenerator(workload.GeneratorConfig{
		Tenants: tenants, Theta: 0, Seed: seed, StartMS: 1000,
	})
	rows := g.Batch(n)
	tIdx := schema.RequestLogSchema().TenantIdx()
	perTenant := make(map[int64]int)
	for _, r := range rows {
		perTenant[r[tIdx].I]++
	}
	return rows, perTenant
}

func catalogRows(catalog *meta.Manager, tenant int64) int64 {
	rows, _ := catalog.Usage(tenant)
	return rows
}

func TestDrainStoreArchivesAllTenants(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{}, mem)
	rs := newRowStore(t)
	rows, perTenant := genRows(t, 300, 3, 7)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}

	n, err := b.DrainStore(rs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(perTenant) {
		t.Errorf("committed %d blocks, want one per tenant = %d", n, len(perTenant))
	}
	if sealed := rs.Sealed(); len(sealed) != 0 {
		t.Errorf("%d segments not released after drain", len(sealed))
	}
	for tenant, want := range perTenant {
		if got := catalogRows(catalog, tenant); got != int64(want) {
			t.Errorf("tenant %d archived rows = %d, want %d", tenant, got, want)
		}
		for _, blk := range catalog.Blocks(tenant) {
			data, err := mem.Get(blk.Path)
			if err != nil {
				t.Fatalf("registered block %s missing from store: %v", blk.Path, err)
			}
			r, err := logblock.OpenReader(logblock.BytesFetcher(data))
			if err != nil {
				t.Fatalf("open %s: %v", blk.Path, err)
			}
			got, err := r.AllRows()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != int(blk.Rows) {
				t.Errorf("%s holds %d rows, catalog says %d", blk.Path, len(got), blk.Rows)
			}
		}
	}
	blocks, archived, _ := b.Stats()
	if blocks != int64(n) || archived != int64(len(rows)) {
		t.Errorf("stats = %d blocks %d rows, want %d/%d", blocks, archived, n, len(rows))
	}
}

func TestDrainStoreChunksByMaxRows(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{MaxRowsPerBlock: 10}, mem)
	rs := newRowStore(t)
	rows, _ := genRows(t, 35, 1, 3)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}
	n, err := b.DrainStore(rs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("35 rows at 10/block committed %d blocks, want 4", n)
	}
	blocks := catalog.Blocks(0)
	if len(blocks) != 4 {
		t.Fatalf("catalog holds %d blocks", len(blocks))
	}
	// Chronological, non-overlapping coverage.
	for i := 1; i < len(blocks); i++ {
		if blocks[i].MinTS < blocks[i-1].MaxTS {
			t.Errorf("blocks %d/%d overlap in time", i-1, i)
		}
	}
}

func TestDrainStoreEmpty(t *testing.T) {
	b, _ := newBuilder(t, builder.Config{}, oss.NewMemStore())
	rs := newRowStore(t)
	if n, err := b.DrainStore(rs); err != nil || n != 0 {
		t.Errorf("empty drain = %d, %v", n, err)
	}
}

// TestRedrainAlreadyRegisteredIsDeduped covers a crash after catalog
// registration but before the segment was released: the re-drain must
// recognize the content-addressed keys and commit nothing new.
func TestRedrainAlreadyRegisteredIsDeduped(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{}, mem)
	rows, perTenant := genRows(t, 200, 3, 5)

	rs1 := newRowStore(t)
	if err := rs1.Append(rows...); err != nil {
		t.Fatal(err)
	}
	n1, err := b.DrainStore(rs1)
	if err != nil {
		t.Fatal(err)
	}
	objects, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}

	// Same rows in a "recovered" segment — as if Release never happened.
	rs2 := newRowStore(t)
	if err := rs2.Append(rows...); err != nil {
		t.Fatal(err)
	}
	n2, err := b.DrainStore(rs2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("re-drain committed %d new blocks, want 0", n2)
	}
	if _, _, skips := b.Stats(); skips < int64(n1) {
		t.Errorf("dedupSkips = %d, want >= %d", skips, n1)
	}
	after, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(objects) {
		t.Errorf("re-drain grew store from %d to %d objects", len(objects), len(after))
	}
	for tenant, want := range perTenant {
		if got := catalogRows(catalog, tenant); got != int64(want) {
			t.Errorf("tenant %d rows double-counted: %d, want %d", tenant, got, want)
		}
	}
}

// TestRedrainUploadedButUnregistered covers a crash between upload and
// registration: the object exists, the catalog entry does not. The
// re-drain must skip the upload (Head dedup) yet still register.
func TestRedrainUploadedButUnregistered(t *testing.T) {
	mem := oss.NewMemStore()
	rows, perTenant := genRows(t, 150, 2, 9)

	// First builder uploads + registers into a throwaway catalog,
	// leaving the objects on the shared store — exactly the state after
	// a crash that lost the (unregistered) catalog delta.
	b1, _ := newBuilder(t, builder.Config{}, mem)
	rs1 := newRowStore(t)
	if err := rs1.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.DrainStore(rs1); err != nil {
		t.Fatal(err)
	}
	objects, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}

	b2, catalog2 := newBuilder(t, builder.Config{}, mem)
	rs2 := newRowStore(t)
	if err := rs2.Append(rows...); err != nil {
		t.Fatal(err)
	}
	n, err := b2.DrainStore(rs2)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(perTenant) {
		t.Errorf("recovery drain registered %d blocks, want %d", n, len(perTenant))
	}
	if _, _, skips := b2.Stats(); skips != int64(len(perTenant)) {
		t.Errorf("upload dedup skips = %d, want %d", skips, len(perTenant))
	}
	after, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(objects) {
		t.Errorf("recovery re-uploaded: %d -> %d objects", len(objects), len(after))
	}
	for tenant, want := range perTenant {
		if got := catalogRows(catalog2, tenant); got != int64(want) {
			t.Errorf("tenant %d rows = %d, want %d", tenant, got, want)
		}
	}
}

// TestDrainFailureKeepsSegmentSealed: an exhausted upload leaves the
// segment sealed in the row store; a later drain retries it and loses
// nothing.
func TestDrainFailureKeepsSegmentSealed(t *testing.T) {
	mem := oss.NewMemStore()
	flaky := oss.NewFlakyStore(mem, 0, 0, 1)
	b, catalog := newBuilder(t, builder.Config{Retry: fastRetry()}, flaky)
	rs := newRowStore(t)
	rows, perTenant := genRows(t, 100, 2, 13)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}

	flaky.FailNextPuts(1000) // outlast every retry attempt
	if _, err := b.DrainStore(rs); err == nil {
		t.Fatal("drain succeeded through a dead store")
	} else if !errors.Is(err, oss.ErrThrottled) {
		t.Fatalf("err = %v, want wrapped ErrThrottled", err)
	}
	if len(rs.Sealed()) == 0 {
		t.Fatal("failed segment was released")
	}

	flaky.FailNextPuts(0) // heal
	n, err := b.DrainStore(rs)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("healed drain committed nothing")
	}
	if len(rs.Sealed()) != 0 {
		t.Error("segment not released after successful drain")
	}
	var total int64
	for tenant, want := range perTenant {
		got := catalogRows(catalog, tenant)
		total += got
		if got != int64(want) {
			t.Errorf("tenant %d rows = %d, want %d", tenant, got, want)
		}
	}
	if total != int64(len(rows)) {
		t.Errorf("archived %d rows total, want %d", total, len(rows))
	}
}

func TestCompactTenantMergesSmallBlocks(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{MaxRowsPerBlock: 40}, mem)
	rs := newRowStore(t)
	rows, _ := genRows(t, 200, 1, 21)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DrainStore(rs); err != nil {
		t.Fatal(err)
	}
	before := catalog.Blocks(0)
	if len(before) != 5 {
		t.Fatalf("setup produced %d blocks, want 5", len(before))
	}

	merged, err := b.CompactTenant(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 5 {
		t.Errorf("merged %d source blocks, want 5", merged)
	}
	after := catalog.Blocks(0)
	if len(after) != 1 {
		t.Fatalf("catalog holds %d blocks after compact, want 1", len(after))
	}
	if got := catalogRows(catalog, 0); got != int64(len(rows)) {
		t.Errorf("rows after compact = %d, want %d", got, len(rows))
	}
	// Sources gone from the store, merged block readable with all rows.
	infos, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Errorf("store holds %d objects after compact, want 1", len(infos))
	}
	data, err := mem.Get(after[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := logblock.OpenReader(logblock.BytesFetcher(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.AllRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Errorf("merged block holds %d rows, want %d", len(got), len(rows))
	}

	// Idempotent: nothing left to merge.
	if again, err := b.CompactTenant(0, 1000); err != nil || again != 0 {
		t.Errorf("second compact = %d, %v, want 0, nil", again, err)
	}
}

func TestCompactTenantRespectsTarget(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{MaxRowsPerBlock: 40}, mem)
	rs := newRowStore(t)
	rows, _ := genRows(t, 200, 1, 23)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DrainStore(rs); err != nil {
		t.Fatal(err)
	}
	// Target of 80 rows: five 40-row blocks pair up 2+2, leaving the
	// last alone (runs of one are not worth rewriting).
	merged, err := b.CompactTenant(0, 80)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 4 {
		t.Errorf("merged %d blocks, want 4", merged)
	}
	after := catalog.Blocks(0)
	if len(after) != 3 {
		t.Errorf("catalog holds %d blocks, want 3 (80+80+40)", len(after))
	}
	if got := catalogRows(catalog, 0); got != int64(len(rows)) {
		t.Errorf("rows = %d, want %d", got, len(rows))
	}
}

func TestSweepOrphans(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{}, mem)
	rs := newRowStore(t)
	rows, _ := genRows(t, 50, 1, 31)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DrainStore(rs); err != nil {
		t.Fatal(err)
	}

	// An unregistered LogBlock (crash between upload and register), and
	// a non-LogBlock object that must never be touched.
	orphan := meta.TenantPrefix(b.Table(), 0) + "logblock-0000000000000001-00000000deadbeef.tar"
	if err := mem.Put(orphan, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	checkpoint := b.Table() + "/checkpoint.json"
	if err := mem.Put(checkpoint, []byte("{}")); err != nil {
		t.Fatal(err)
	}

	deleted, err := b.SweepOrphans()
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Errorf("swept %d objects, want 1", deleted)
	}
	if _, err := mem.Get(orphan); !errors.Is(err, oss.ErrNotFound) {
		t.Error("orphan survived the sweep")
	}
	if _, err := mem.Get(checkpoint); err != nil {
		t.Error("sweep deleted a non-LogBlock object")
	}
	for _, blk := range catalog.Blocks(0) {
		if _, err := mem.Get(blk.Path); err != nil {
			t.Errorf("sweep deleted registered block %s", blk.Path)
		}
	}
}

func TestBuilderKeysAreTenantScoped(t *testing.T) {
	mem := oss.NewMemStore()
	b, catalog := newBuilder(t, builder.Config{}, mem)
	rs := newRowStore(t)
	rows, perTenant := genRows(t, 120, 4, 17)
	if err := rs.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DrainStore(rs); err != nil {
		t.Fatal(err)
	}
	for tenant := range perTenant {
		for _, blk := range catalog.Blocks(tenant) {
			if want := meta.TenantPrefix(b.Table(), tenant); !strings.HasPrefix(blk.Path, want) {
				t.Errorf("block %s outside tenant prefix %s", blk.Path, want)
			}
		}
	}
}

func TestNewValidates(t *testing.T) {
	sch := schema.RequestLogSchema()
	store := oss.NewMemStore()
	catalog := meta.NewManager()
	if _, err := builder.New(builder.Config{}, nil, store, catalog); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := builder.New(builder.Config{}, sch, nil, catalog); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := builder.New(builder.Config{}, sch, store, nil); err == nil {
		t.Error("nil catalog accepted")
	}
	b, err := builder.New(builder.Config{}, sch, store, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if b.Table() != sch.Name {
		t.Errorf("default table = %q, want %q", b.Table(), sch.Name)
	}
	if _, ok := b.Store().(*oss.RetryingStore); !ok {
		t.Error("builder store is not retry-wrapped")
	}
}
