package builder_test

import (
	"strings"
	"testing"
	"time"

	"logstore/internal/builder"
	"logstore/internal/logblock"
	"logstore/internal/oss"
	"logstore/internal/retry"
	"logstore/internal/schema"
	"logstore/internal/workload"
)

// chaosRetry: enough attempts that a 5% fault rate essentially never
// exhausts an operation (0.05^6 ≈ 1.6e-8), with millisecond backoff so
// the test stays fast.
func chaosRetry() *retry.Policy {
	return &retry.Policy{
		MaxAttempts:    6,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		Seed:           101,
		Classify:       oss.ClassifyError,
	}
}

// TestChaosArchivePipeline runs repeated ingest→drain→compact→sweep
// cycles against a store failing 5% of Puts and 5% of Gets, then
// asserts the pipeline's core invariants:
//
//   - zero lost rows: every appended row is queryable from exactly one
//     registered LogBlock;
//   - zero duplicates: per-tenant archived row counts equal appended
//     counts exactly (content-addressed commits never double-register);
//   - zero orphaned visible blocks: every catalog path exists on the
//     store, and after a sweep every stored LogBlock is in the catalog;
//   - bounded retries: faults were actually retried, and the breaker is
//     closed once the store heals (it never wedges open).
func TestChaosArchivePipeline(t *testing.T) {
	const (
		rounds    = 12
		batchRows = 120
		tenants   = 5
		faultRate = 0.05
	)
	mem := oss.NewMemStore()
	flaky := oss.NewFlakyStore(mem, faultRate, faultRate, 42)
	b, catalog := newBuilder(t, builder.Config{
		MaxRowsPerBlock: 50, // small blocks: more commits, more fault windows
		Retry:           chaosRetry(),
	}, flaky)
	rs := newRowStore(t)
	sch := schema.RequestLogSchema()
	g := workload.NewGenerator(workload.GeneratorConfig{
		Tenants: tenants, Theta: 0.4, Seed: 9, StartMS: 1000,
	})

	appended := make(map[int64]int64)
	for round := 0; round < rounds; round++ {
		rows := g.Batch(batchRows)
		for _, r := range rows {
			appended[r[sch.TenantIdx()].I]++
		}
		if err := rs.Append(rows...); err != nil {
			t.Fatal(err)
		}
		// A drain that exhausts its retries leaves the segment sealed;
		// the next round's drain picks it up again — that is the
		// recovery path under test, not a failure.
		if _, err := b.DrainStore(rs); err != nil {
			t.Logf("round %d drain (retrying next round): %v", round, err)
		}
		if round%4 == 3 {
			for tenant := range appended {
				if _, err := b.CompactTenant(tenant, 200); err != nil {
					t.Logf("round %d compact tenant %d: %v", round, tenant, err)
				}
			}
			if _, err := b.SweepOrphans(); err != nil {
				t.Logf("round %d sweep: %v", round, err)
			}
		}
	}

	// Heal the store and finish the pipeline: every sealed segment must
	// drain, and the breaker must admit traffic again.
	flaky.SetRates(0, 0)
	deadline := time.Now().Add(10 * time.Second)
	for len(rs.Sealed()) > 0 || func() bool { r, _, _ := rs.Stats(); return r > 0 }() {
		if _, err := b.DrainStore(rs); err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("pipeline never drained after heal: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := b.SweepOrphans(); err != nil {
		t.Fatal(err)
	}

	store := b.Store().(*oss.RetryingStore)

	// Zero lost rows, zero duplicates: catalog row accounting matches
	// the appended counts exactly, and the blocks really hold the rows.
	var totalAppended, totalArchived int64
	for tenant, want := range appended {
		totalAppended += want
		rows, _ := catalog.Usage(tenant)
		totalArchived += rows
		if rows != want {
			t.Errorf("tenant %d archived %d rows, appended %d", tenant, rows, want)
		}
		var read int64
		for _, blk := range catalog.Blocks(tenant) {
			data, err := store.Get(blk.Path)
			if err != nil {
				t.Fatalf("registered block %s unreadable: %v", blk.Path, err)
			}
			r, err := logblock.OpenReader(logblock.BytesFetcher(data))
			if err != nil {
				t.Fatalf("open %s: %v", blk.Path, err)
			}
			all, err := r.AllRows()
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(all)) != blk.Rows {
				t.Errorf("%s holds %d rows, catalog says %d", blk.Path, len(all), blk.Rows)
			}
			read += int64(len(all))
		}
		if read != want {
			t.Errorf("tenant %d readable rows = %d, want %d", tenant, read, want)
		}
	}
	if totalArchived != totalAppended {
		t.Errorf("archived %d rows total, appended %d", totalArchived, totalAppended)
	}

	// Zero orphaned visible blocks: after the sweep, store contents and
	// catalog agree exactly.
	registered := make(map[string]bool)
	for _, tenant := range catalog.Tenants() {
		for _, blk := range catalog.Blocks(tenant) {
			registered[blk.Path] = true
		}
	}
	infos, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	stored := 0
	for _, info := range infos {
		if !strings.HasSuffix(info.Key, ".tar") {
			continue
		}
		stored++
		if !registered[info.Key] {
			t.Errorf("orphan object survived sweep: %s", info.Key)
		}
	}
	if stored != len(registered) {
		t.Errorf("store holds %d LogBlocks, catalog registers %d", stored, len(registered))
	}

	// Bounded retries; the breaker healed.
	attempts, retries, _ := store.RetryStats()
	if retries == 0 {
		t.Error("chaos run exercised no retries — fault injection broken?")
	}
	if attempts > 40*int64(rounds*tenants)*int64(chaosRetry().MaxAttempts) {
		t.Errorf("retry volume unbounded: %d attempts", attempts)
	}
	if open, _ := store.Breaker().State(); open {
		t.Error("breaker still open after store healed")
	}
	if flaky.InjectedFailures() == 0 {
		t.Error("no faults injected")
	}
	t.Logf("chaos: %d rows, %d blocks, %d attempts, %d retries, %d injected faults, %d breaker opens",
		totalAppended, len(registered), attempts, retries, flaky.InjectedFailures(), store.Breaker().Opens())
}
