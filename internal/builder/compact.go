package builder

import (
	"fmt"
	"strings"

	"logstore/internal/logblock"
	"logstore/internal/meta"
	"logstore/internal/schema"
)

// DefaultCompactTargetRows bounds a merged LogBlock's rows when the
// caller passes 0.
const DefaultCompactTargetRows = 1_000_000

// CompactTenant merges the tenant's small adjacent LogBlocks into
// larger ones, bounding each merged block at targetRows rows
// (0 = DefaultCompactTargetRows). It returns the number of source
// blocks merged away. High-frequency archiving litters object storage
// with tiny objects; this is the background housekeeping task (same
// class as expiration and checkpointing) that repairs it.
//
// The commit is atomic and crash-safe: merged blocks are uploaded
// first (invisible), then the catalog entries are swapped in one
// operation (meta.Replace), then the source objects are deleted
// best-effort. A crash before the swap leaves only invisible merged
// objects (orphans for SweepOrphans); a crash after it leaves only
// unreferenced source objects — in neither case does a query see
// double or missing rows.
func (b *Builder) CompactTenant(tenant int64, targetRows int) (int, error) {
	if targetRows <= 0 {
		targetRows = DefaultCompactTargetRows
	}
	blocks := b.catalog.Blocks(tenant)
	merged := 0
	for _, group := range planGroups(blocks, targetRows) {
		if err := b.mergeGroup(tenant, group); err != nil {
			return merged, fmt.Errorf("builder: compact tenant %d: %w", tenant, err)
		}
		merged += len(group)
	}
	return merged, nil
}

// planGroups partitions the tenant's time-ordered blocks into adjacent
// runs whose row sums stay within targetRows; only runs of two or more
// blocks are worth rewriting.
func planGroups(blocks []meta.BlockInfo, targetRows int) [][]meta.BlockInfo {
	var groups [][]meta.BlockInfo
	var cur []meta.BlockInfo
	var curRows int64
	flush := func() {
		if len(cur) >= 2 {
			groups = append(groups, cur)
		}
		cur = nil
		curRows = 0
	}
	for _, blk := range blocks {
		if len(cur) > 0 && curRows+blk.Rows > int64(targetRows) {
			flush()
		}
		if blk.Rows >= int64(targetRows) {
			// Already at target size: never a merge candidate.
			flush()
			continue
		}
		cur = append(cur, blk)
		curRows += blk.Rows
	}
	flush()
	return groups
}

// mergeGroup rewrites one run of adjacent blocks as a single LogBlock.
func (b *Builder) mergeGroup(tenant int64, group []meta.BlockInfo) error {
	var rows []schema.Row
	for _, blk := range group {
		blockRows, err := b.readBlockRows(blk.Path)
		if err != nil {
			return fmt.Errorf("read %s: %w", blk.Path, err)
		}
		rows = append(rows, blockRows...)
	}

	built, err := logblock.Build(b.sch, rows, b.buildOptions())
	if err != nil {
		return err
	}
	packed, err := built.Pack()
	if err != nil {
		return err
	}
	key := b.blockKey(tenant, built.Meta.MinTS, packed)

	b.mu.Lock()
	b.pending[key] = struct{}{}
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.pending, key)
		b.mu.Unlock()
	}()

	// Upload while invisible (idempotent: skip if already there).
	if info, err := b.store.Head(key); err != nil || info.Size != int64(len(packed)) {
		if err := b.store.Put(key, packed); err != nil {
			return fmt.Errorf("upload %s: %w", key, err)
		}
	} else {
		b.dedupSkips.Inc()
	}

	// Atomic commit: sources out, merged block in, one catalog swap.
	removePaths := make([]string, len(group))
	var createdMS int64
	for i, blk := range group {
		removePaths[i] = blk.Path
		if blk.CreatedMS > createdMS {
			createdMS = blk.CreatedMS
		}
	}
	info := meta.BlockInfo{
		Tenant:    tenant,
		Path:      key,
		MinTS:     built.Meta.MinTS,
		MaxTS:     built.Meta.MaxTS,
		Rows:      int64(built.Meta.RowCount),
		Bytes:     int64(len(packed)),
		CreatedMS: createdMS,
	}
	if err := b.catalog.Replace(tenant, removePaths, []meta.BlockInfo{info}); err != nil {
		return fmt.Errorf("commit %s: %w", key, err)
	}
	b.blocksBuilt.Inc()

	// The source objects are now unreferenced; delete best-effort. A
	// failure leaves an invisible orphan for SweepOrphans.
	for _, path := range removePaths {
		if path == key {
			continue // content-identical rewrite; never delete the live key
		}
		_ = b.store.Delete(path)
	}
	return nil
}

// readBlockRows materializes every row of one archived LogBlock.
func (b *Builder) readBlockRows(path string) ([]schema.Row, error) {
	data, err := b.store.Get(path)
	if err != nil {
		return nil, err
	}
	r, err := logblock.OpenReader(logblock.BytesFetcher(data))
	if err != nil {
		return nil, err
	}
	return r.AllRows()
}

// SweepOrphans deletes objects under the builder's table directory that
// are neither registered in the catalog nor part of an in-flight
// commit — the invisible leftovers of crashes between upload and
// registration. Returns the number of objects deleted. Callers should
// serialize it with drains of the same builder (the worker's archive
// mutex does).
func (b *Builder) SweepOrphans() (int, error) {
	infos, err := b.store.List(b.cfg.Table + "/")
	if err != nil {
		return 0, fmt.Errorf("builder: sweep list: %w", err)
	}
	registered := make(map[string]bool)
	for _, tenant := range b.catalog.Tenants() {
		for _, blk := range b.catalog.Blocks(tenant) {
			registered[blk.Path] = true
		}
	}
	b.mu.Lock()
	pending := make(map[string]bool, len(b.pending))
	for k := range b.pending {
		pending[k] = true
	}
	b.mu.Unlock()

	deleted := 0
	for _, info := range infos {
		if registered[info.Key] || pending[info.Key] {
			continue
		}
		if !strings.HasSuffix(info.Key, ".tar") {
			continue // never touch non-LogBlock objects
		}
		if err := b.store.Delete(info.Key); err != nil {
			return deleted, fmt.Errorf("builder: sweep delete %s: %w", info.Key, err)
		}
		deleted++
	}
	return deleted, nil
}
