// Package prefetch implements the parallel prefetch method from the
// paper (§5.2, Figure 10): before loading, a requested byte range is
// split by the block-alignment adapter into fixed-size file blocks;
// missing blocks are fetched from object storage in parallel by a
// bounded thread pool, duplicate in-flight block reads are merged, and
// fetched blocks land in the multi-level block cache.
package prefetch

import (
	"fmt"
	"sync"
)

// Service is the prefetch thread pool: a fixed set of workers draining
// a task queue.
type Service struct {
	tasks  chan func()
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// NewService starts a pool with the given number of workers and queue
// depth. workers <= 0 selects 1; queueDepth <= 0 selects workers*4.
func NewService(workers, queueDepth int) *Service {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth <= 0 {
		queueDepth = workers * 4
	}
	s := &Service{tasks: make(chan func(), queueDepth)}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer s.wg.Done()
			for fn := range s.tasks {
				fn()
			}
		}()
	}
	return s
}

// Submit enqueues fn, blocking while the queue is full. It returns an
// error after Close.
func (s *Service) Submit(fn func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("prefetch: service closed")
	}
	s.mu.Unlock()
	s.tasks <- fn
	return nil
}

// Close drains the queue and stops the workers. Safe to call twice.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.tasks)
	s.wg.Wait()
}
