package prefetch

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"logstore/internal/cache"
	"logstore/internal/oss"
)

// DefaultBlockSize is the file-block granularity of the cache and the
// prefetcher (the paper's cache operates on 1k/128k/1024k blocks; 128k
// is the general-purpose middle tier).
const DefaultBlockSize = 128 << 10

// CachedFetcher serves ranged reads of one object through the block
// cache, loading missing blocks from object storage — in parallel when
// a prefetch pool is attached, serially otherwise (the paper's
// "without parallel prefetch" baseline). It implements
// logblock.Fetcher; FetchCtx is the context-aware entry the query path
// uses so a caller's deadline cancels in-flight storage reads.
type CachedFetcher struct {
	Store     oss.Store
	Key       string
	Cache     *cache.BlockCache // nil disables caching
	BlockSize int64             // 0 = DefaultBlockSize
	Pool      *Service          // nil = serial block loading

	szMu   sync.Mutex
	size   int64
	sizeOk bool

	mu       sync.Mutex
	inflight map[int64]*call
}

type call struct {
	done chan struct{}
	data []byte
	err  error
}

// objectSize resolves the object's total size, memoizing only success:
// a canceled or failed probe must not poison the fetcher for every
// later query (the size is a property of the object, the failure a
// property of one call). Concurrent first probes may race and issue
// duplicate Heads; both store the same answer.
func (f *CachedFetcher) objectSize(ctx context.Context) (int64, error) {
	f.szMu.Lock()
	if f.sizeOk {
		sz := f.size
		f.szMu.Unlock()
		return sz, nil
	}
	f.szMu.Unlock()
	info, err := oss.HeadContext(ctx, f.Store, f.Key)
	if err != nil {
		return 0, err
	}
	f.szMu.Lock()
	f.size, f.sizeOk = info.Size, true
	f.szMu.Unlock()
	return info.Size, nil
}

func (f *CachedFetcher) blockSize() int64 {
	if f.BlockSize > 0 {
		return f.BlockSize
	}
	return DefaultBlockSize
}

func (f *CachedFetcher) blockKey(bi int64) string {
	return fmt.Sprintf("%s#%d#%d", f.Key, f.blockSize(), bi)
}

// isCtxErr reports whether err is a context cancellation or deadline
// (possibly wrapped by the retry layer).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// loadBlock returns block bi, via cache, merged in-flight fetch, or a
// fresh ranged read. The merge is context-aware on both sides: a
// waiter stops waiting when its own context dies, and a waiter whose
// leader was canceled (the leader's context error, not ours) retries
// the load under its own context instead of failing a healthy query
// with someone else's cancellation.
func (f *CachedFetcher) loadBlock(ctx context.Context, bi int64) ([]byte, error) {
	key := f.blockKey(bi)
	for {
		if f.Cache != nil {
			if data, ok := f.Cache.Get(key); ok {
				return data, nil
			}
		}

		f.mu.Lock()
		if f.inflight == nil {
			f.inflight = make(map[int64]*call)
		}
		if c, ok := f.inflight[bi]; ok {
			// Another goroutine is already loading this block: merge.
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				return c.data, nil
			}
			if isCtxErr(c.err) && ctx.Err() == nil {
				continue // the leader died of its own deadline, not ours
			}
			return nil, c.err
		}
		c := &call{done: make(chan struct{})}
		f.inflight[bi] = c
		f.mu.Unlock()

		c.data, c.err = f.fetchBlock(ctx, bi)
		if c.err == nil && f.Cache != nil {
			f.Cache.Put(key, c.data)
		}
		f.mu.Lock()
		delete(f.inflight, bi)
		f.mu.Unlock()
		close(c.done)
		return c.data, c.err
	}
}

func (f *CachedFetcher) fetchBlock(ctx context.Context, bi int64) ([]byte, error) {
	total, err := f.objectSize(ctx)
	if err != nil {
		return nil, err
	}
	bs := f.blockSize()
	off := bi * bs
	if off >= total {
		return nil, fmt.Errorf("prefetch: block %d beyond object %s (%d bytes)", bi, f.Key, total)
	}
	size := bs
	if off+size > total {
		size = total - off
	}
	return oss.GetRangeContext(ctx, f.Store, f.Key, off, size)
}

// Fetch implements logblock.Fetcher: it returns size bytes at off,
// assembling them from aligned cache blocks.
func (f *CachedFetcher) Fetch(off, size int64) ([]byte, error) {
	return f.FetchCtx(context.Background(), off, size)
}

// FetchCtx is Fetch bounded by ctx: an expired context returns before
// any storage operation, and cancellation mid-assembly stops the
// remaining block loads.
func (f *CachedFetcher) FetchCtx(ctx context.Context, off, size int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if off < 0 || size < 0 {
		return nil, fmt.Errorf("prefetch: negative range [%d, %d)", off, off+size)
	}
	if size == 0 {
		return []byte{}, nil
	}
	total, err := f.objectSize(ctx)
	if err != nil {
		return nil, err
	}
	if off+size > total {
		return nil, fmt.Errorf("prefetch: range [%d, %d) beyond object %s (%d bytes)",
			off, off+size, f.Key, total)
	}
	bs := f.blockSize()
	first := off / bs
	last := (off + size - 1) / bs

	blocks := make([][]byte, last-first+1)
	if f.Pool == nil || last == first {
		for bi := first; bi <= last; bi++ {
			data, err := f.loadBlock(ctx, bi)
			if err != nil {
				return nil, err
			}
			blocks[bi-first] = data
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(blocks))
		for bi := first; bi <= last; bi++ {
			bi := bi
			wg.Add(1)
			task := func() {
				defer wg.Done()
				blocks[bi-first], errs[bi-first] = f.loadBlock(ctx, bi)
			}
			if err := f.Pool.Submit(task); err != nil {
				// Pool closed: fall back to loading inline.
				task()
			}
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	}

	out := make([]byte, 0, size)
	for i, block := range blocks {
		bi := first + int64(i)
		blockStart := bi * bs
		lo := int64(0)
		if off > blockStart {
			lo = off - blockStart
		}
		hi := int64(len(block))
		if blockStart+hi > off+size {
			hi = off + size - blockStart
		}
		if lo > hi || hi > int64(len(block)) {
			return nil, fmt.Errorf("prefetch: internal slice error block %d [%d:%d] len %d", bi, lo, hi, len(block))
		}
		out = append(out, block[lo:hi]...)
	}
	if int64(len(out)) != size {
		return nil, fmt.Errorf("prefetch: assembled %d bytes, want %d", len(out), size)
	}
	return out, nil
}
