package prefetch

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"logstore/internal/oss"
)

// TestFetchCtxExpiredNoStoreTouch: a dead context returns before any
// storage operation is issued.
func TestFetchCtxExpiredNoStoreTouch(t *testing.T) {
	mem := oss.NewMemStore()
	if err := mem.Put("obj", bytes.Repeat([]byte{7}, 1024)); err != nil {
		t.Fatal(err)
	}
	var stats oss.Stats
	f := &CachedFetcher{Store: oss.NewCountingStore(mem, &stats), Key: "obj"}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.FetchCtx(ctx, 0, 16); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchCtx = %v, want Canceled", err)
	}
	if n := stats.Heads.Value() + stats.RangeGets.Value() + stats.Gets.Value(); n != 0 {
		t.Fatalf("dead context issued %d storage ops, want 0", n)
	}
}

// TestFetchCtxSizeNotPoisoned: a canceled size probe does not poison
// later fetches — the next caller with a live context succeeds.
func TestFetchCtxSizeNotPoisoned(t *testing.T) {
	mem := oss.NewMemStore()
	payload := bytes.Repeat([]byte{3}, 2048)
	if err := mem.Put("obj", payload); err != nil {
		t.Fatal(err)
	}
	fs := oss.NewFlakyStore(mem, 0, 0, 1)
	fs.StallNextGets(1, 10*time.Second) // the Head stalls
	f := &CachedFetcher{Store: fs, Key: "obj"}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := f.FetchCtx(ctx, 0, 16); err == nil {
		t.Fatal("stalled first fetch succeeded, want deadline error")
	}
	got, err := f.FetchCtx(context.Background(), 0, 16)
	if err != nil {
		t.Fatalf("fetch after canceled probe: %v", err)
	}
	if !bytes.Equal(got, payload[:16]) {
		t.Fatalf("fetched %v, want %v", got, payload[:16])
	}
}

// TestFetchCtxForeignCancelRetries: a waiter merged onto a leader whose
// context is canceled retries under its own context and succeeds.
func TestFetchCtxForeignCancelRetries(t *testing.T) {
	mem := oss.NewMemStore()
	payload := bytes.Repeat([]byte{9}, 256)
	if err := mem.Put("obj", payload); err != nil {
		t.Fatal(err)
	}
	fs := oss.NewFlakyStore(mem, 0, 0, 1)
	f := &CachedFetcher{Store: fs, Key: "obj"}
	// Resolve the size up front so the stall below lands on the block
	// read, not the Head.
	if _, err := f.FetchCtx(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}

	// Leader: fetches an uncached block with a short deadline while the
	// store stalls. Waiter: same block, patient context.
	fs.StallNextGets(1, 10*time.Second)
	leaderCtx, leaderCancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer leaderCancel()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := f.loadBlock(leaderCtx, 0)
		leaderErr <- err
	}()
	// Give the leader time to register as in-flight and hit the stall.
	time.Sleep(10 * time.Millisecond)
	waited := make(chan error, 1)
	go func() {
		_, err := f.loadBlock(context.Background(), 0)
		waited <- err
	}()
	if err := <-leaderErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader = %v, want DeadlineExceeded", err)
	}
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("waiter inherited foreign cancellation: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter never completed")
	}
}
