package prefetch

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logstore/internal/cache"
	"logstore/internal/oss"
)

func TestServiceRunsTasks(t *testing.T) {
	s := NewService(4, 16)
	defer s.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := s.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Errorf("ran %d tasks", n.Load())
	}
}

func TestServiceCloseIdempotentAndRejects(t *testing.T) {
	s := NewService(0, 0) // clamped to 1 worker
	s.Close()
	s.Close()
	if err := s.Submit(func() {}); err == nil {
		t.Error("Submit after Close should error")
	}
}

func makeObject(t testing.TB, n int, seed int64) ([]byte, oss.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	store := oss.NewMemStore()
	if err := store.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	return data, store
}

func TestCachedFetcherCorrectness(t *testing.T) {
	data, store := makeObject(t, 100000, 1)
	bc, err := cache.NewBlockCache(cache.BlockCacheConfig{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewService(8, 32)
	defer pool.Close()
	f := &CachedFetcher{Store: store, Key: "obj", Cache: bc, BlockSize: 1024, Pool: pool}

	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		off := rng.Int63n(int64(len(data)))
		size := rng.Int63n(int64(len(data)) - off)
		got, err := f.Fetch(off, size)
		if err != nil {
			t.Fatalf("Fetch(%d, %d): %v", off, size, err)
		}
		if !bytes.Equal(got, data[off:off+size]) {
			t.Fatalf("Fetch(%d, %d) content mismatch", off, size)
		}
	}
}

func TestCachedFetcherSerial(t *testing.T) {
	data, store := makeObject(t, 50000, 3)
	f := &CachedFetcher{Store: store, Key: "obj", BlockSize: 512} // no cache, no pool
	got, err := f.Fetch(1000, 3000)
	if err != nil || !bytes.Equal(got, data[1000:4000]) {
		t.Fatalf("serial fetch broken: %v", err)
	}
}

func TestCachedFetcherBounds(t *testing.T) {
	_, store := makeObject(t, 1000, 4)
	f := &CachedFetcher{Store: store, Key: "obj", BlockSize: 128}
	if _, err := f.Fetch(-1, 10); err == nil {
		t.Error("negative offset should error")
	}
	if _, err := f.Fetch(0, -1); err == nil {
		t.Error("negative size should error")
	}
	if _, err := f.Fetch(990, 20); err == nil {
		t.Error("beyond-object range should error")
	}
	got, err := f.Fetch(5, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("zero-size fetch = %v, %v", got, err)
	}
	missing := &CachedFetcher{Store: store, Key: "nope", BlockSize: 128}
	if _, err := missing.Fetch(0, 1); err == nil {
		t.Error("missing object should error")
	}
}

func TestCachedFetcherUsesCache(t *testing.T) {
	_, mem := makeObject(t, 65536, 5)
	counting := oss.NewCountingStore(mem, nil)
	bc, err := cache.NewBlockCache(cache.BlockCacheConfig{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	f := &CachedFetcher{Store: counting, Key: "obj", Cache: bc, BlockSize: 4096}
	if _, err := f.Fetch(0, 65536); err != nil {
		t.Fatal(err)
	}
	cold := counting.Stats().RangeGets.Value()
	if cold != 16 {
		t.Errorf("cold read issued %d range gets, want 16", cold)
	}
	// Second read: everything cached, no new range gets.
	if _, err := f.Fetch(0, 65536); err != nil {
		t.Fatal(err)
	}
	if got := counting.Stats().RangeGets.Value(); got != cold {
		t.Errorf("warm read issued %d extra range gets", got-cold)
	}
}

func TestCachedFetcherMergesDuplicateLoads(t *testing.T) {
	_, mem := makeObject(t, 8192, 6)
	slow := oss.NewSimStore(mem, oss.LatencyModel{RequestLatency: 20 * time.Millisecond}, 1)
	counting := oss.NewCountingStore(slow, nil)
	bc, err := cache.NewBlockCache(cache.BlockCacheConfig{MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewService(8, 32)
	defer pool.Close()
	f := &CachedFetcher{Store: counting, Key: "obj", Cache: bc, BlockSize: 8192, Pool: pool}

	// Many goroutines demand the same (single) block concurrently; the
	// in-flight merge must collapse them into one ranged read.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.Fetch(0, 8192); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := counting.Stats().RangeGets.Value(); got != 1 {
		t.Errorf("%d range gets for one hot block, want 1 (merged)", got)
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	_, mem := makeObject(t, 64*1024, 7)
	model := oss.LatencyModel{RequestLatency: 5 * time.Millisecond, MaxConcurrent: 32}
	slow := oss.NewSimStore(mem, model, 1)

	serial := &CachedFetcher{Store: slow, Key: "obj", BlockSize: 4096}
	start := time.Now()
	if _, err := serial.Fetch(0, 64*1024); err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(start)

	pool := NewService(16, 64)
	defer pool.Close()
	parallel := &CachedFetcher{Store: slow, Key: "obj", BlockSize: 4096, Pool: pool}
	start = time.Now()
	if _, err := parallel.Fetch(0, 64*1024); err != nil {
		t.Fatal(err)
	}
	parallelTime := time.Since(start)

	// 16 blocks at 5ms each: serial ~80ms, parallel ~1-2 rounds.
	if parallelTime*3 > serialTime {
		t.Errorf("parallel prefetch (%v) not decisively faster than serial (%v)", parallelTime, serialTime)
	}
}

func TestFetchSpanningUnalignedEdges(t *testing.T) {
	data, store := makeObject(t, 10240, 8)
	f := &CachedFetcher{Store: store, Key: "obj", BlockSize: 1000}
	// Range crossing three blocks with ragged edges.
	got, err := f.Fetch(999, 1002)
	if err != nil || !bytes.Equal(got, data[999:2001]) {
		t.Fatalf("unaligned span broken: %v", err)
	}
	// Tail block shorter than BlockSize.
	got, err = f.Fetch(10000, 240)
	if err != nil || !bytes.Equal(got, data[10000:]) {
		t.Fatalf("tail fetch broken: %v", err)
	}
}

func BenchmarkCachedFetcherWarm(b *testing.B) {
	data := make([]byte, 1<<20)
	store := oss.NewMemStore()
	if err := store.Put("obj", data); err != nil {
		b.Fatal(err)
	}
	bc, err := cache.NewBlockCache(cache.BlockCacheConfig{MemoryBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	f := &CachedFetcher{Store: store, Key: "obj", Cache: bc}
	if _, err := f.Fetch(0, 1<<20); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Fetch(int64(i%512)*1024, 128<<10); err != nil {
			b.Fatal(err)
		}
	}
}
