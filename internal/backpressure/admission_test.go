package backpressure

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// pinnedClock is a manually advanced clock for deterministic bucket
// refill.
type pinnedClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *pinnedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *pinnedClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestAdmissionTenantRows(t *testing.T) {
	clk := &pinnedClock{now: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{
		TenantRowsPerSec: 100,
		Now:              clk.Now,
	})
	// The initial burst admits one second of rate.
	if err := a.Admit(7, 100, 10); err != nil {
		t.Fatalf("first burst: %v", err)
	}
	a.Release(10)
	// The bucket is empty; the next batch is shed with a refill hint.
	err := a.Admit(7, 50, 10)
	var ov *ErrOverloaded
	if !errors.As(err, &ov) {
		t.Fatalf("over-rate admit = %v, want ErrOverloaded", err)
	}
	if ov.Tenant != 7 || ov.Scope != "tenant-rows" {
		t.Fatalf("ErrOverloaded = %+v", ov)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	// A different tenant is not starved by the hot one.
	if err := a.Admit(8, 100, 10); err != nil {
		t.Fatalf("cold tenant shed alongside hot: %v", err)
	}
	a.Release(10)
	// After the advertised wait, the hot tenant is admitted again.
	clk.Advance(ov.RetryAfter + time.Millisecond)
	if err := a.Admit(7, 50, 10); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	a.Release(10)
	admitted, shed := a.Stats()
	if admitted != 3 || shed != 1 {
		t.Fatalf("stats = (%d admitted, %d shed), want (3, 1)", admitted, shed)
	}
}

func TestAdmissionGlobalBudget(t *testing.T) {
	clk := &pinnedClock{now: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{GlobalBytes: 100, Now: clk.Now})
	if err := a.Admit(1, 1, 60); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(2, 1, 60); err == nil {
		t.Fatal("global budget overshot")
	} else {
		var ov *ErrOverloaded
		if !errors.As(err, &ov) || ov.Scope != "global-bytes" {
			t.Fatalf("global rejection = %v", err)
		}
	}
	if got := a.InflightBytes(); got != 60 {
		t.Fatalf("InflightBytes = %d, want 60", got)
	}
	a.Release(60)
	if got := a.InflightBytes(); got != 0 {
		t.Fatalf("InflightBytes after release = %d, want 0", got)
	}
	if err := a.Admit(2, 1, 60); err != nil {
		t.Fatalf("post-release admit: %v", err)
	}
	a.Release(60)
}

func TestAdmissionSlowFractionSheds(t *testing.T) {
	clk := &pinnedClock{now: time.Unix(1000, 0)}
	slow := 0.0
	var mu sync.Mutex
	a := NewAdmission(AdmissionConfig{
		TenantRowsPerSec: 100,
		Now:              clk.Now,
		SlowFraction: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return slow
		},
	})
	// Drain the initial burst.
	if err := a.Admit(1, 100, 0); err != nil {
		t.Fatal(err)
	}
	// Healthy: 1s refills 100 rows.
	clk.Advance(time.Second)
	if err := a.Admit(1, 100, 0); err != nil {
		t.Fatalf("healthy refill: %v", err)
	}
	// Half rate under full degradation: the same 1s now refills only 75.
	mu.Lock()
	slow = 1.0
	mu.Unlock()
	clk.Advance(time.Second)
	if err := a.Admit(1, 100, 0); err == nil {
		t.Fatal("degraded refill admitted a full-rate batch")
	}
	if err := a.Admit(1, 50, 0); err != nil {
		t.Fatalf("degraded half-rate batch shed: %v", err)
	}
}

func TestAdmissionZeroConfigAdmitsAll(t *testing.T) {
	a := NewAdmission(AdmissionConfig{})
	for i := 0; i < 100; i++ {
		if err := a.Admit(1, 1<<20, 1<<30); err != nil {
			t.Fatalf("zero config shed batch %d: %v", i, err)
		}
		a.Release(1 << 30)
	}
}

// TestAdmissionHotPathAllocs: after a tenant's first batch, the admit/
// release cycle must not allocate — the broker runs it per tenant
// sub-batch on the zero-alloc ingest path.
func TestAdmissionHotPathAllocs(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		TenantRowsPerSec:  1e12,
		TenantBytesPerSec: 1e15,
		GlobalBytes:       1 << 50,
	})
	if err := a.Admit(1, 1, 100); err != nil { // warm the bucket
		t.Fatal(err)
	}
	a.Release(100)
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Admit(1, 1000, 100_000); err != nil {
			t.Fatal(err)
		}
		a.Release(100_000)
	})
	if allocs != 0 {
		t.Fatalf("admit/release allocates %.1f times per op, want 0", allocs)
	}
}

func TestAdmissionSweepIdle(t *testing.T) {
	clk := &pinnedClock{now: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{TenantRowsPerSec: 100, Now: clk.Now})
	for _, tn := range []int64{1, 2, 3} {
		if err := a.Admit(tn, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(10 * time.Minute)
	if err := a.Admit(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if n := a.SweepIdle(time.Minute); n != 2 {
		t.Fatalf("SweepIdle = %d, want 2 (tenants 2 and 3)", n)
	}
}
