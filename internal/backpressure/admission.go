package backpressure

import (
	"fmt"
	"sync"
	"time"

	"logstore/internal/metrics"
)

// This file is the admission-control half of flow control: where Queue
// bounds memory *inside* the pipeline, Admission bounds what enters it,
// per tenant. Each tenant gets a rows/s and a bytes/s token bucket; a
// global in-flight byte budget caps the aggregate. A tenant that
// exceeds its buckets is shed with ErrOverloaded — carrying a
// RetryAfter hint — before its batch allocates queue space, so one hot
// tenant saturates its own buckets instead of everyone's queues
// (FoundationDB Record Layer's lesson: per-tenant throttling is what
// makes multi-tenancy safe). When the health tracker reports a
// fraction of workers as slow (gray failure, not fail-stop), effective
// rates shrink proportionally: the cluster sheds at the door the work
// its degraded capacity could only have queued.

// ErrOverloaded reports an admission rejection. RetryAfter is the
// bucket's estimate of when the same request would be admitted — the
// HTTP surface maps it onto a 429 Retry-After header.
type ErrOverloaded struct {
	// Tenant is the shed tenant (meaningless for global-budget
	// rejections, whose Scope is "global-bytes").
	Tenant int64
	// Scope names the exhausted limit: "tenant-rows", "tenant-bytes",
	// or "global-bytes".
	Scope string
	// RetryAfter estimates how long until the request would fit.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrOverloaded) Error() string {
	if e.Scope == "global-bytes" {
		return fmt.Sprintf("backpressure: overloaded (%s), retry after %v", e.Scope, e.RetryAfter)
	}
	return fmt.Sprintf("backpressure: tenant %d overloaded (%s), retry after %v", e.Tenant, e.Scope, e.RetryAfter)
}

// AdmissionConfig sizes the admission layer. Zero-valued rate fields
// disable that check, so the zero config admits everything.
type AdmissionConfig struct {
	// TenantRowsPerSec is each tenant's sustained append rate in rows/s
	// (0 = unlimited).
	TenantRowsPerSec float64
	// TenantBytesPerSec is each tenant's sustained append rate in
	// bytes/s (0 = unlimited).
	TenantBytesPerSec float64
	// BurstSeconds sizes bucket capacity as rate×BurstSeconds
	// (0 selects 1s: a tenant may burst one second of its rate).
	BurstSeconds float64
	// GlobalBytes caps the aggregate in-flight (admitted but not yet
	// released) payload across all tenants (0 = unlimited).
	GlobalBytes int64
	// Now is the clock seam (nil = time.Now); tests pin it.
	Now func() time.Time
	// SlowFraction, when set, reports the fraction of serving workers
	// currently degraded (0..1); effective tenant rates scale by
	// 1−SlowFraction/2, floored at ¼ — slow workers shed load, dead
	// workers are someone else's problem (failover).
	SlowFraction func() float64
}

// Admission is the per-tenant token-bucket admission controller. Safe
// for concurrent use.
type Admission struct {
	cfg   AdmissionConfig
	burst float64 // seconds of rate a bucket may hold

	mu       sync.Mutex
	tenants  map[int64]*tenantBuckets
	inflight int64

	admitted metrics.Counter
	shed     metrics.Counter
}

type tenantBuckets struct {
	rows, bytes float64 // current tokens
	last        time.Time
}

// NewAdmission returns a controller for cfg. A nil-ish (all-zero)
// config admits everything and costs one map lookup per append.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	burst := cfg.BurstSeconds
	if burst <= 0 {
		burst = 1
	}
	return &Admission{cfg: cfg, burst: burst, tenants: make(map[int64]*tenantBuckets)}
}

// NeedsBytes reports whether any configured budget charges by payload
// size — callers may skip measuring batch bytes entirely when false.
func (a *Admission) NeedsBytes() bool {
	return a.cfg.TenantBytesPerSec > 0 || a.cfg.GlobalBytes > 0
}

// scale returns the degradation multiplier on effective rates.
func (a *Admission) scale() float64 {
	if a.cfg.SlowFraction == nil {
		return 1
	}
	f := a.cfg.SlowFraction()
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	s := 1 - f/2
	if s < 0.25 {
		s = 0.25
	}
	return s
}

// Admit charges one batch (rows rows, bytes payload bytes) against
// tenant's buckets and the global budget. On success the caller MUST
// call Release(bytes) with the same byte count when the batch leaves
// the ingest pipeline (acked or failed) to return it to the global
// budget; rate-bucket tokens are consumed permanently (that is what a
// rate is). On rejection it returns *ErrOverloaded and charges
// nothing. The success path allocates nothing after a tenant's first
// batch — admission may cost bookkeeping, never throughput.
func (a *Admission) Admit(tenant int64, rows int, bytes int64) error {
	scale := a.scale()
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitLocked(now, scale, tenant, rows, bytes)
}

// TenantCharge describes one tenant sub-batch for AdmitBatch.
type TenantCharge struct {
	Tenant int64
	Rows   int
	Bytes  int64
}

// AdmitBatch charges consecutive tenant sub-batches in one locked pass,
// amortizing the clock read, the degradation probe, and the lock over
// the whole client batch — a multi-tenant append touching a hundred
// tenants costs one Admit's fixed overhead, not a hundred. It admits a
// prefix: charges[0:n] are admitted (their byte total returned for one
// Release call); when err != nil, charges[n] was shed and everything
// after it is left uncharged.
func (a *Admission) AdmitBatch(charges []TenantCharge) (n int, charged int64, err error) {
	scale := a.scale()
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, c := range charges {
		if err := a.admitLocked(now, scale, c.Tenant, c.Rows, c.Bytes); err != nil {
			return i, charged, err
		}
		charged += c.Bytes
	}
	return len(charges), charged, nil
}

// admitLocked is one tenant charge under a held a.mu with the clock
// and degradation scale already sampled.
func (a *Admission) admitLocked(now time.Time, scale float64, tenant int64, rows int, bytes int64) error {
	rowRate := a.cfg.TenantRowsPerSec * scale
	byteRate := a.cfg.TenantBytesPerSec * scale

	var tb *tenantBuckets
	if rowRate > 0 || byteRate > 0 {
		var ok bool
		tb, ok = a.tenants[tenant]
		if !ok {
			// A new bucket starts full: the first burst is free.
			tb = &tenantBuckets{
				rows:  a.cfg.TenantRowsPerSec * a.burst,
				bytes: a.cfg.TenantBytesPerSec * a.burst,
				last:  now,
			}
			a.tenants[tenant] = tb
		}
		// Refill at the scaled rate, capped at the unscaled burst
		// (capacity is sized for the healthy cluster; degradation slows
		// refill, it does not shrink what was already earned).
		dt := now.Sub(tb.last).Seconds()
		if dt > 0 {
			tb.rows = minf(tb.rows+rowRate*dt, a.cfg.TenantRowsPerSec*a.burst)
			tb.bytes = minf(tb.bytes+byteRate*dt, a.cfg.TenantBytesPerSec*a.burst)
			tb.last = now
		}
		if rowRate > 0 && float64(rows) > tb.rows {
			a.shed.Inc()
			return &ErrOverloaded{
				Tenant:     tenant,
				Scope:      "tenant-rows",
				RetryAfter: refillTime(float64(rows)-tb.rows, rowRate),
			}
		}
		if byteRate > 0 && float64(bytes) > tb.bytes {
			a.shed.Inc()
			return &ErrOverloaded{
				Tenant:     tenant,
				Scope:      "tenant-bytes",
				RetryAfter: refillTime(float64(bytes)-tb.bytes, byteRate),
			}
		}
	}

	if a.cfg.GlobalBytes > 0 && a.inflight+bytes > a.cfg.GlobalBytes {
		a.shed.Inc()
		// No rate drains the global budget — releases do — so the hint
		// is a flat "come back soon".
		return &ErrOverloaded{Scope: "global-bytes", RetryAfter: 50 * time.Millisecond}
	}

	if tb != nil {
		if rowRate > 0 {
			tb.rows -= float64(rows)
		}
		if byteRate > 0 {
			tb.bytes -= float64(bytes)
		}
	}
	a.inflight += bytes
	a.admitted.Inc()
	return nil
}

// Release returns an admitted batch's bytes to the global in-flight
// budget. Call exactly once per successful Admit, with the same byte
// count, when the batch leaves the ingest pipeline.
func (a *Admission) Release(bytes int64) {
	a.mu.Lock()
	a.inflight -= bytes
	a.mu.Unlock()
}

// refillTime says how long a bucket needs to earn deficit tokens.
func refillTime(deficit, rate float64) time.Duration {
	if rate <= 0 {
		return time.Second
	}
	d := time.Duration(deficit / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// InflightBytes reports the admitted-but-unreleased payload total.
func (a *Admission) InflightBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Stats reports admitted and shed batch counts.
func (a *Admission) Stats() (admitted, shed int64) {
	return a.admitted.Value(), a.shed.Value()
}

// SweepIdle drops bucket state for tenants idle longer than idle —
// bounded memory across millions of mostly-cold tenants. Returns the
// number swept. The cluster's heartbeat loop calls this on its own
// cadence.
func (a *Admission) SweepIdle(idle time.Duration) int {
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for t, tb := range a.tenants {
		if now.Sub(tb.last) > idle {
			delete(a.tenants, t)
			n++
		}
	}
	return n
}
