package backpressure

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPushPopFIFO(t *testing.T) {
	q := NewQueue("test", 10, 0)
	for i := 0; i < 5; i++ {
		if err := q.Push(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v.(int) != i {
			t.Fatalf("Pop %d = %v, %v", i, v, ok)
		}
	}
}

func TestCountLimit(t *testing.T) {
	q := NewQueue("test", 2, 0)
	if err := q.Push("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c", 1); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("third push err = %v, want ErrBackpressure", err)
	}
	// Draining frees capacity.
	q.Pop()
	if err := q.Push("c", 1); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
	if q.Snapshot().Rejected != 1 {
		t.Errorf("Rejected = %d", q.Snapshot().Rejected)
	}
}

func TestByteLimit(t *testing.T) {
	// Few massive inputs must trip BFC even when the count is tiny —
	// the paper's explicit motivation for the byte axis.
	q := NewQueue("test", 1000, 100)
	if err := q.Push("big", 90); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("small", 20); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("byte-limit push err = %v", err)
	}
	if err := q.Push("tiny", 10); err != nil {
		t.Fatalf("fitting push rejected: %v", err)
	}
	if q.Bytes() != 100 {
		t.Errorf("Bytes = %d", q.Bytes())
	}
}

func TestUnlimitedAxes(t *testing.T) {
	q := NewQueue("test", 0, 0)
	for i := 0; i < 10000; i++ {
		if err := q.Push(i, 1<<20); err != nil {
			t.Fatalf("unlimited queue rejected push %d: %v", i, err)
		}
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	q := NewQueue("test", 0, 100)
	if err := q.Push("x", -50); err != nil {
		t.Fatal(err)
	}
	if q.Bytes() != 0 {
		t.Errorf("Bytes = %d", q.Bytes())
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	q := NewQueue("test", 10, 0)
	done := make(chan any, 1)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	select {
	case <-done:
		t.Fatal("Pop returned before Push")
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.Push("wake", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "wake" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop never woke")
	}
}

func TestCloseSemantics(t *testing.T) {
	q := NewQueue("test", 10, 0)
	if err := q.Push("a", 1); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := q.Push("b", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close = %v", err)
	}
	// Pending item still drains.
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Fatalf("Pop after close = %v, %v", v, ok)
	}
	// Then Pop reports drained.
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on drained closed queue should report false")
	}
}

func TestCloseWakesBlockedPoppers(t *testing.T) {
	q := NewQueue("test", 10, 0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.Pop(); ok {
				t.Error("unexpected item")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not wake blocked poppers")
	}
}

func TestTryPop(t *testing.T) {
	q := NewQueue("test", 10, 0)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty should miss")
	}
	if err := q.Push(7, 3); err != nil {
		t.Fatal(err)
	}
	v, ok := q.TryPop()
	if !ok || v.(int) != 7 {
		t.Fatalf("TryPop = %v, %v", v, ok)
	}
	if q.Bytes() != 0 || q.Len() != 0 {
		t.Error("TryPop did not release accounting")
	}
}

func TestSaturation(t *testing.T) {
	q := NewQueue("test", 10, 1000)
	if got := q.Saturation(); got != 0 {
		t.Errorf("empty saturation = %v", got)
	}
	q.Push("a", 900) // bytes: 0.9, items: 0.1
	if got := q.Saturation(); got < 0.89 || got > 0.91 {
		t.Errorf("saturation = %v, want 0.9 (max axis)", got)
	}
	q2 := NewQueue("items-only", 4, 0)
	q2.Push(1, 0)
	q2.Push(2, 0)
	q2.Push(3, 0)
	if got := q2.Saturation(); got != 0.75 {
		t.Errorf("saturation = %v, want 0.75", got)
	}
}

func TestSnapshot(t *testing.T) {
	q := NewQueue("wal-sync", 2, 50)
	q.Push("a", 10)
	q.Push("b", 20)
	q.Push("c", 10) // rejected: count
	q.Pop()
	s := q.Snapshot()
	if s.Name != "wal-sync" || s.Len != 1 || s.Bytes != 20 ||
		s.Pushed != 2 || s.Popped != 1 || s.Rejected != 1 ||
		s.MaxItems != 2 || s.MaxBytes != 50 {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue("test", 64, 0)
	const total = 4000
	var produced, consumed, rejections int64
	var pmu sync.Mutex

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				for {
					err := q.Push(i, 1)
					if err == nil {
						pmu.Lock()
						produced++
						pmu.Unlock()
						break
					}
					pmu.Lock()
					rejections++
					pmu.Unlock()
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	var cg sync.WaitGroup
	for c := 0; c < 2; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
				pmu.Lock()
				consumed++
				pmu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if produced != total || consumed != total {
		t.Errorf("produced %d consumed %d, want %d", produced, consumed, total)
	}
}

// TestDrainAllAtomicAccounting is the group-drain regression test:
// removing N items in one DrainAll must release item and byte
// accounting atomically, so a concurrent Snapshot never observes
// negative or stale occupancy (e.g. zero items with leftover bytes).
func TestDrainAllAtomicAccounting(t *testing.T) {
	q := NewQueue("drain", 1024, 1<<20)
	for round := 0; round < 50; round++ {
		for i := 0; i < 64; i++ {
			if err := q.Push(i, 100); err != nil {
				t.Fatal(err)
			}
		}
		stop := make(chan struct{})
		bad := make(chan string, 1)
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := q.Snapshot()
				if s.Bytes < 0 || s.Len < 0 {
					select {
					case bad <- fmt.Sprintf("negative occupancy: len=%d bytes=%d", s.Len, s.Bytes):
					default:
					}
					return
				}
				if int64(s.Len)*100 != s.Bytes {
					select {
					case bad <- fmt.Sprintf("stale occupancy: len=%d bytes=%d", s.Len, s.Bytes):
					default:
					}
					return
				}
			}
		}()
		out := q.DrainAll(nil)
		close(stop)
		select {
		case msg := <-bad:
			t.Fatal(msg)
		default:
		}
		if len(out) != 64 {
			t.Fatalf("drained %d items, want 64", len(out))
		}
		for i, v := range out {
			if v.(int) != i {
				t.Fatalf("out[%d] = %v, want %d (FIFO order)", i, v, i)
			}
		}
		s := q.Snapshot()
		if s.Len != 0 || s.Bytes != 0 {
			t.Fatalf("after drain: len=%d bytes=%d, want 0/0", s.Len, s.Bytes)
		}
	}
	// Popped metric advanced by every drained item.
	if got := q.Snapshot().Popped; got != 50*64 {
		t.Fatalf("popped = %d, want %d", got, 50*64)
	}
	// Draining an empty queue leaves out untouched.
	if out := q.DrainAll(nil); out != nil {
		t.Fatalf("empty drain returned %v", out)
	}
}
