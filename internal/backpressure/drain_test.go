package backpressure

import (
	"errors"
	"sync"
	"testing"
)

// TestSaturatedErrorCarriesSnapshot: Push rejections are typed, keep
// errors.Is compatibility with the sentinel, and carry the rejecting
// queue's state.
func TestSaturatedErrorCarriesSnapshot(t *testing.T) {
	q := NewQueue("sat", 1, 0)
	if err := q.Push("a", 10); err != nil {
		t.Fatal(err)
	}
	err := q.Push("b", 10)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("Push = %v, want errors.Is ErrBackpressure", err)
	}
	var sat *SaturatedError
	if !errors.As(err, &sat) {
		t.Fatalf("Push = %T, want *SaturatedError", err)
	}
	if sat.Queue.Name != "sat" || sat.Queue.Len != 1 || sat.Queue.Bytes != 10 {
		t.Fatalf("snapshot in error = %+v", sat.Queue)
	}
	if sat.Queue.Rejected != 1 {
		t.Fatalf("Rejected in snapshot = %d, want 1", sat.Queue.Rejected)
	}
}

func TestDrainAllEmpty(t *testing.T) {
	q := NewQueue("d", 10, 0)
	out := q.DrainAll(nil)
	if out != nil {
		t.Fatalf("DrainAll(empty) = %v, want nil unchanged", out)
	}
	// Accounting untouched.
	s := q.Snapshot()
	if s.Len != 0 || s.Bytes != 0 || s.Popped != 0 {
		t.Fatalf("snapshot after empty drain = %+v", s)
	}
}

func TestDrainAllClosed(t *testing.T) {
	q := NewQueue("d", 10, 0)
	if err := q.Push("a", 3); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("b", 4); err != nil {
		t.Fatal(err)
	}
	q.Close()
	// Close leaves pending items poppable; DrainAll takes them all.
	out := q.DrainAll(nil)
	if len(out) != 2 || out[0] != "a" || out[1] != "b" {
		t.Fatalf("DrainAll(closed) = %v", out)
	}
	s := q.Snapshot()
	if s.Len != 0 || s.Bytes != 0 || s.Popped != 2 || s.Pushed != 2 {
		t.Fatalf("snapshot after closed drain = %+v", s)
	}
	// A second drain of the now-empty closed queue is a no-op.
	if out := q.DrainAll(nil); out != nil {
		t.Fatalf("second DrainAll = %v, want nil", out)
	}
}

// TestDrainAllConcurrentPush: pushed == popped + len at every
// observation point, and bytes never go negative, while producers race
// a draining consumer.
func TestDrainAllConcurrentPush(t *testing.T) {
	q := NewQueue("d", 0, 0) // unbounded: no rejections to account for
	const producers = 4
	const perProducer = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(i, 7); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}()
	}
	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf []any
		for drained < producers*perProducer {
			buf = q.DrainAll(buf[:0])
			drained += len(buf)
			s := q.Snapshot()
			if s.Bytes < 0 {
				t.Errorf("negative byte accounting: %+v", s)
				return
			}
			if s.Popped+int64(s.Len) > s.Pushed {
				t.Errorf("accounting invariant violated: %+v", s)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if drained != producers*perProducer {
		t.Fatalf("drained %d, want %d", drained, producers*perProducer)
	}
	s := q.Snapshot()
	if s.Len != 0 || s.Bytes != 0 || s.Pushed != int64(producers*perProducer) || s.Popped != s.Pushed {
		t.Fatalf("final snapshot = %+v", s)
	}
}
