// Package backpressure implements LogStore's Backpressure Flow Control
// (BFC, paper §4.2): every buffer queue between pipeline stages is
// bounded by both pending-request count and pending byte size — "for
// each queue, we monitor both the number and size of pending requests,
// because processing a small number of massive inputs can also cause
// the system to overload". When either limit is exceeded the queue
// rejects the write with ErrBackpressure, and the rejection propagates
// upstream stage by stage until the client's append slows down,
// bounding memory under extreme load.
package backpressure

import (
	"errors"
	"fmt"
	"sync"

	"logstore/internal/metrics"
)

// ErrBackpressure is returned when a queue is over one of its limits.
// Callers are expected to surface it upstream (ultimately to the
// client) rather than retry hot.
var ErrBackpressure = errors.New("backpressure: queue limit exceeded")

// ErrClosed is returned when pushing to or draining a closed queue.
var ErrClosed = errors.New("backpressure: queue closed")

// SaturatedError is the typed form of a queue rejection: it satisfies
// errors.Is(err, ErrBackpressure) and carries the queue's state at the
// moment of rejection, so the rejection path (HTTP 429 mapping, chaos
// reports, logs) can say *which* queue was full and how full, instead
// of a bare sentinel. Compare with errors.Is, never ==.
type SaturatedError struct {
	// Queue is the rejecting queue's snapshot at rejection time.
	Queue Snapshot
}

// Error implements error.
func (e *SaturatedError) Error() string {
	return fmt.Sprintf("backpressure: queue %s saturated (%d items / %d bytes, limits %d / %d)",
		e.Queue.Name, e.Queue.Len, e.Queue.Bytes, e.Queue.MaxItems, e.Queue.MaxBytes)
}

// Unwrap makes errors.Is(err, ErrBackpressure) hold.
func (e *SaturatedError) Unwrap() error { return ErrBackpressure }

// Queue is a bounded FIFO monitored by item count and byte size.
// It is safe for concurrent producers and consumers.
type Queue struct {
	name     string
	maxItems int
	maxBytes int64

	mu     sync.Mutex
	nempty *sync.Cond
	items  []queueItem
	bytes  int64
	closed bool

	rejected metrics.Counter
	pushed   metrics.Counter
	popped   metrics.Counter
}

type queueItem struct {
	value any
	size  int64
}

// NewQueue returns a queue named for diagnostics, bounded to maxItems
// entries and maxBytes total payload. Non-positive limits mean
// "unlimited" on that axis (at least one axis should be bounded for BFC
// to do anything).
func NewQueue(name string, maxItems int, maxBytes int64) *Queue {
	q := &Queue{name: name, maxItems: maxItems, maxBytes: maxBytes}
	q.nempty = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Push enqueues value accounting size bytes. It never blocks: when a
// limit is hit it returns ErrBackpressure immediately, which is what
// propagates the pressure upstream.
func (q *Queue) Push(value any, size int64) error {
	if size < 0 {
		size = 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if (q.maxItems > 0 && len(q.items) >= q.maxItems) ||
		(q.maxBytes > 0 && q.bytes+size > q.maxBytes) {
		q.rejected.Inc()
		return &SaturatedError{Queue: q.snapshotLocked()}
	}
	q.items = append(q.items, queueItem{value: value, size: size})
	q.bytes += size
	q.pushed.Inc()
	q.nempty.Signal()
	return nil
}

// Pop blocks until an item is available or the queue is closed and
// drained. The boolean is false only in the closed-and-drained case.
func (q *Queue) Pop() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nempty.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	q.bytes -= it.size
	q.popped.Inc()
	return it.value, true
}

// TryPop returns immediately: (nil, false) when empty.
func (q *Queue) TryPop() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	q.bytes -= it.size
	q.popped.Inc()
	return it.value, true
}

// DrainAll pops every pending item in FIFO order in one critical
// section, appending the values to out and returning it. Item and byte
// accounting is released atomically with the removal — a concurrent
// Snapshot observes either the full queue or the empty one, never a
// negative or stale occupancy — which is what the raft group-commit
// drain relies on when it takes N proposals in one loop iteration.
// Returns out unchanged when the queue is empty.
func (q *Queue) DrainAll(out []any) []any {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return out
	}
	for i := range q.items {
		out = append(out, q.items[i].value)
		q.items[i] = queueItem{} // release the reference
	}
	q.popped.Add(int64(len(q.items)))
	q.items = q.items[:0]
	q.bytes = 0
	return out
}

// Close marks the queue closed; pending items remain poppable, blocked
// Pops wake, and further Pushes fail with ErrClosed.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nempty.Broadcast()
}

// Len returns the number of pending items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Bytes returns the pending payload size.
func (q *Queue) Bytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bytes
}

// Snapshot reports the queue's monitored state for the BFC monitor and
// experiment harness.
type Snapshot struct {
	Name     string
	Len      int
	Bytes    int64
	MaxItems int
	MaxBytes int64
	Pushed   int64
	Popped   int64
	Rejected int64
}

// Snapshot returns current metrics.
func (q *Queue) Snapshot() Snapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.snapshotLocked()
}

func (q *Queue) snapshotLocked() Snapshot {
	return Snapshot{
		Name:     q.name,
		Len:      len(q.items),
		Bytes:    q.bytes,
		MaxItems: q.maxItems,
		MaxBytes: q.maxBytes,
		Pushed:   q.pushed.Value(),
		Popped:   q.popped.Value(),
		Rejected: q.rejected.Value(),
	}
}

// Saturation returns the queue's fill fraction on its most-loaded axis,
// in [0, 1] (or >1 transiently never — rejection prevents it). The BFC
// monitor uses this to decide when a stage is under pressure.
func (q *Queue) Saturation() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var s float64
	if q.maxItems > 0 {
		s = float64(len(q.items)) / float64(q.maxItems)
	}
	if q.maxBytes > 0 {
		if b := float64(q.bytes) / float64(q.maxBytes); b > s {
			s = b
		}
	}
	return s
}
