package workload

import (
	"math"
	"strings"
	"testing"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(100, 0.99, 1)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Next() = %d, out of [0,100)", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// At θ=0.99, rank 0 must dominate; empirical frequency should be
	// close to the analytic weight.
	z := NewZipfian(1000, 0.99, 42)
	counts := make([]int, 1000)
	const n = 500000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	w0 := z.Weight(0)
	f0 := float64(counts[0]) / n
	if math.Abs(f0-w0)/w0 > 0.1 {
		t.Errorf("rank-0 frequency %v vs analytic weight %v (>10%% off)", f0, w0)
	}
	// Monotone-ish decay: head must exceed deep tail decisively.
	if counts[0] < counts[500]*10 {
		t.Errorf("insufficient skew: head=%d rank500=%d", counts[0], counts[500])
	}
}

func TestZipfianUniform(t *testing.T) {
	// θ=0 is uniform: all ranks within 3x of expectation.
	z := NewZipfian(100, 0, 7)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	exp := float64(n) / 100
	for r, c := range counts {
		if float64(c) < exp/3 || float64(c) > exp*3 {
			t.Errorf("θ=0 rank %d count %d far from uniform expectation %v", r, c, exp)
		}
	}
}

func TestZipfianWeightsSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.8, 0.99} {
		z := NewZipfian(500, theta, 1)
		var sum float64
		for k := 0; k < 500; k++ {
			sum += z.Weight(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("θ=%v: weights sum to %v", theta, sum)
		}
		if z.Weight(-1) != 0 || z.Weight(500) != 0 {
			t.Error("out-of-range weight should be 0")
		}
	}
}

func TestZipfianDegenerate(t *testing.T) {
	z := NewZipfian(1, 0.99, 1)
	for i := 0; i < 10; i++ {
		if z.Next() != 0 {
			t.Fatal("n=1 must always return 0")
		}
	}
	z = NewZipfian(0, -1, 1) // clamped to n=1, θ=0
	if z.N() != 1 || z.Theta() != 0 {
		t.Errorf("clamping failed: n=%d θ=%v", z.N(), z.Theta())
	}
	z = NewZipfian(10, 1.5, 1) // θ clamped below 1
	if z.Theta() >= 1 {
		t.Errorf("θ not clamped: %v", z.Theta())
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a := NewZipfian(100, 0.99, 5)
	b := NewZipfian(100, 0.99, 5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
}

func TestGeneratorRows(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Tenants: 50, Theta: 0.99, Seed: 1, StartMS: 1000, StepMS: 2})
	sch := g.Schema
	rows := g.Batch(500)
	if len(rows) != 500 {
		t.Fatalf("Batch returned %d rows", len(rows))
	}
	prevTS := int64(0)
	for i, r := range rows {
		if err := r.Conforms(sch); err != nil {
			t.Fatalf("row %d does not conform: %v", i, err)
		}
		if tid := r.Tenant(sch); tid < 0 || tid >= 50 {
			t.Fatalf("row %d tenant %d out of range", i, tid)
		}
		ts := r.Time(sch)
		if ts <= prevTS {
			t.Fatalf("row %d timestamp %d not increasing (prev %d)", i, ts, prevTS)
		}
		prevTS = ts
		lat := r[sch.ColumnIndex("latency")].I
		if lat < 1 || lat > 30000 {
			t.Fatalf("row %d latency %d out of range", i, lat)
		}
		fail := r[sch.ColumnIndex("fail")].S
		if fail != "true" && fail != "false" {
			t.Fatalf("row %d fail = %q", i, fail)
		}
	}
	if g.NowMS() != 1000+500*2 {
		t.Errorf("NowMS = %d", g.NowMS())
	}
}

func TestGeneratorTenantSkew(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Tenants: 100, Theta: 0.99, Seed: 3})
	counts := make(map[int64]int)
	for i := 0; i < 50000; i++ {
		counts[g.Next().Tenant(g.Schema)]++
	}
	if counts[0] < counts[50]*5 {
		t.Errorf("tenant skew too weak: t0=%d t50=%d", counts[0], counts[50])
	}
}

func TestDiurnalRate(t *testing.T) {
	peak := DiurnalRate(16, 0.3)
	trough := DiurnalRate(4, 0.3)
	if peak <= trough {
		t.Errorf("peak %v should exceed trough %v", peak, trough)
	}
	for h := 0.0; h < 24; h += 0.5 {
		v := DiurnalRate(h, 0.3)
		if v < 0.3-1e-9 || v > 1+1e-9 {
			t.Errorf("hour %v: rate %v outside [0.3, 1]", h, v)
		}
	}
	// Clamping of minFrac.
	if v := DiurnalRate(12, -1); v < 0 || v > 1 {
		t.Errorf("negative minFrac not clamped: %v", v)
	}
	if v := DiurnalRate(12, 2); math.Abs(v-1) > 1e-9 {
		t.Errorf("minFrac>1 should pin rate to 1, got %v", v)
	}
}

func TestGenerateQueries(t *testing.T) {
	qs := GenerateQueries(QuerySetConfig{
		Tenants:        10,
		PerTenant:      6,
		HistoryStartMS: 0,
		HistoryEndMS:   48 * 3600_000,
		Seed:           1,
	})
	if len(qs) != 60 {
		t.Fatalf("got %d queries, want 60", len(qs))
	}
	shapes := map[string]bool{}
	for i, q := range qs {
		if q.Tenant != int64(i/6) {
			t.Errorf("query %d tenant %d", i, q.Tenant)
		}
		if q.StartMS < 0 || q.EndMS > 48*3600_000 || q.StartMS > q.EndMS {
			t.Errorf("query %d bad range [%d, %d]", i, q.StartMS, q.EndMS)
		}
		if !strings.HasPrefix(q.SQL, "SELECT log FROM request_log WHERE tenant_id = ") {
			t.Errorf("query %d SQL = %q", i, q.SQL)
		}
		if !strings.Contains(q.SQL, "ts >= ") || !strings.Contains(q.SQL, "ts <= ") {
			t.Errorf("query %d SQL missing time range: %q", i, q.SQL)
		}
		key := ""
		if q.IP != "" {
			key += "ip"
			if !strings.Contains(q.SQL, "ip = '"+q.IP+"'") {
				t.Errorf("query %d SQL missing ip predicate", i)
			}
		}
		if q.MinLat >= 0 {
			key += "lat"
			if !strings.Contains(q.SQL, "latency >= ") {
				t.Errorf("query %d SQL missing latency predicate", i)
			}
		}
		if q.Fail != "" {
			key += "fail"
			if !strings.Contains(q.SQL, "fail = '"+q.Fail+"'") {
				t.Errorf("query %d SQL missing fail predicate", i)
			}
		}
		shapes[key] = true
	}
	// The six shapes include a bare scan, ip-only, latency-only,
	// fail-only, and the fully predicated needle.
	for _, want := range []string{"", "ip", "lat", "fail", "iplatfail"} {
		if !shapes[want] {
			t.Errorf("missing query shape %q (got %v)", want, shapes)
		}
	}
}

func TestGenerateQueriesDefaults(t *testing.T) {
	qs := GenerateQueries(QuerySetConfig{Tenants: 2, HistoryEndMS: 1000})
	if len(qs) != 12 {
		t.Errorf("default PerTenant should be 6, got %d queries", len(qs))
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(100000, 0.99, 1)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(GeneratorConfig{Tenants: 1000, Theta: 0.99, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
