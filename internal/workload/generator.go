package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"logstore/internal/schema"
)

// Generator produces request_log rows for a multi-tenant workload whose
// tenant draw is Zipfian(θ), matching the paper's YCSB setup: 1000
// tenants, weight of tenant k proportional to (1/k)^θ.
type Generator struct {
	Schema  *schema.Schema
	zipf    *Zipfian
	rng     *rand.Rand
	now     int64 // ms timestamp for the next row
	stepMS  int64
	apis    []string
	ips     []string
	msgPool []string
}

// GeneratorConfig configures a workload generator.
type GeneratorConfig struct {
	Tenants int     // number of tenants (paper: 1000)
	Theta   float64 // Zipf skew (paper: 0.99 ≈ production)
	Seed    int64
	StartMS int64 // timestamp of the first row (ms)
	StepMS  int64 // timestamp increment per row; <=0 means 1ms
}

// NewGenerator returns a generator for the paper's request_log table.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.StepMS <= 0 {
		cfg.StepMS = 1
	}
	if cfg.StartMS == 0 {
		cfg.StartMS = time.Date(2020, 11, 11, 0, 0, 0, 0, time.UTC).UnixMilli()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		Schema: schema.RequestLogSchema(),
		zipf:   NewZipfian(cfg.Tenants, cfg.Theta, cfg.Seed+1),
		rng:    rng,
		now:    cfg.StartMS,
		stepMS: cfg.StepMS,
	}
	g.apis = []string{
		"/api/v1/query", "/api/v1/insert", "/api/v1/scan",
		"/api/v2/login", "/api/v2/logout", "/api/v2/profile",
		"/admin/metrics", "/admin/config", "/healthz", "/api/v1/export",
	}
	g.ips = make([]string, 64)
	for i := range g.ips {
		g.ips[i] = fmt.Sprintf("192.168.%d.%d", i/16, 1+i%250)
	}
	g.msgPool = []string{
		"request served", "cache miss on shard", "slow query detected",
		"connection reset by peer", "retrying upstream call",
		"rate limit applied", "payload validated", "session refreshed",
		"index lookup complete", "fallback path taken",
	}
	return g
}

// Tenants returns the number of tenants in the workload.
func (g *Generator) Tenants() int { return g.zipf.N() }

// TenantWeight returns the expected traffic share of tenant k.
func (g *Generator) TenantWeight(k int) float64 { return g.zipf.Weight(k) }

// NextTenant draws a tenant id under the Zipfian distribution.
func (g *Generator) NextTenant() int64 { return int64(g.zipf.Next()) }

// Next produces one row: a Zipf-drawn tenant and synthetic request-log
// fields. Timestamps advance by StepMS per row so archived data is
// time-ordered like a real ingest stream.
func (g *Generator) Next() schema.Row {
	row := g.RowForTenant(g.NextTenant())
	return row
}

// RowForTenant produces a row for a specific tenant (used when traffic
// shaping decides the tenant externally, e.g. the hotspot experiments).
func (g *Generator) RowForTenant(tenant int64) schema.Row {
	ts := g.now
	g.now += g.stepMS
	latency := g.latency()
	fail := "false"
	if g.rng.Intn(100) == 0 {
		fail = "true"
	}
	api := g.apis[g.rng.Intn(len(g.apis))]
	ip := g.ips[g.rng.Intn(len(g.ips))]
	msg := fmt.Sprintf("%s tenant=%d path=%s code=%d", g.msgPool[g.rng.Intn(len(g.msgPool))],
		tenant, api, 200+g.rng.Intn(5)*100)
	return schema.Row{
		schema.IntValue(tenant),
		schema.IntValue(ts),
		schema.StringValue(ip),
		schema.StringValue(api),
		schema.IntValue(latency),
		schema.StringValue(fail),
		schema.StringValue(msg),
	}
}

// latency draws a long-tailed request latency in ms (lognormal-ish).
func (g *Generator) latency() int64 {
	v := math.Exp(g.rng.NormFloat64()*1.0 + 3.0) // median ≈ 20ms
	if v > 30000 {
		v = 30000
	}
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// Batch produces n rows.
func (g *Generator) Batch(n int) []schema.Row {
	rows := make([]schema.Row, n)
	for i := range rows {
		rows[i] = g.Next()
	}
	return rows
}

// NowMS returns the timestamp the next generated row will carry.
func (g *Generator) NowMS() int64 { return g.now }

// DiurnalRate models the daily write-throughput curve from Figure 1:
// traffic peaks during working hours and dips at night. hour is in
// [0, 24); the returned multiplier is in [minFrac, 1].
func DiurnalRate(hour float64, minFrac float64) float64 {
	if minFrac < 0 {
		minFrac = 0
	}
	if minFrac > 1 {
		minFrac = 1
	}
	// Two-peak working-hours curve: main peak ~11:00, secondary ~16:00,
	// trough ~04:00, built from shifted cosines.
	base := 0.5 - 0.5*math.Cos((hour-4)/24*2*math.Pi) // trough at 4am, peak at 4pm
	morning := 0.3 * math.Exp(-(hour-11)*(hour-11)/8) // morning bump
	v := base + morning
	if v > 1 {
		v = 1
	}
	return minFrac + (1-minFrac)*v
}
