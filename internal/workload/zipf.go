// Package workload re-implements the YCSB-style workload machinery the
// paper uses for its evaluation (§6.1): a θ-parameterized Zipfian
// generator over tenant ranks, a log-record generator for the
// request_log sample table, the diurnal traffic curve from Figure 1, and
// the per-tenant query-set generator used in the query experiments.
package workload

import (
	"math"
	"math/rand"
)

// Zipfian draws values in [0, n) with P(k) ∝ 1/(k+1)^θ, matching the
// generator in the YCSB framework. θ = 0 degenerates to uniform; the
// paper uses θ = 0.99 to mirror the production skew in Figure 2.
//
// This is the standard Gray et al. rejection-free construction used by
// YCSB (zeta-based), so weights follow the paper exactly: the weight of
// tenant k is proportional to (1/k)^θ.
type Zipfian struct {
	n     int
	theta float64

	alpha, zetan, eta float64
	rng               *rand.Rand
}

// NewZipfian returns a Zipfian generator over [0, n). n must be >= 1.
// theta must be in [0, 1); YCSB's default of 0.99 matches the paper.
func NewZipfian(n int, theta float64, seed int64) *Zipfian {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	if theta >= 1 {
		theta = 0.9999
	}
	z := &Zipfian{
		n:     n,
		theta: theta,
		rng:   rand.New(rand.NewSource(seed)),
	}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H_{n,θ}.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value in [0, n). Rank 0 is the hottest.
func (z *Zipfian) Next() int {
	if z.n == 1 {
		return 0
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Weight returns the relative weight of rank k (0-based): (1/(k+1))^θ,
// normalized so that all weights sum to 1. Used to compute expected
// per-tenant traffic shares analytically.
func (z *Zipfian) Weight(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	return (1.0 / math.Pow(float64(k+1), z.theta)) / z.zetan
}

// N returns the domain size.
func (z *Zipfian) N() int { return z.n }

// Theta returns the skew parameter.
func (z *Zipfian) Theta() float64 { return z.theta }
