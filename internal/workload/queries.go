package workload

import (
	"fmt"
	"math/rand"
)

// QuerySpec is one generated retrieval query, carried both as structured
// fields (for direct planner use) and as SQL text using the paper's
// template (§5.1):
//
//	SELECT log FROM request_log WHERE tenant_id = ? AND ts >= ? AND
//	ts <= ? [AND ip = ?] [AND latency >= ?] [AND fail = ?]
type QuerySpec struct {
	Tenant  int64
	StartMS int64
	EndMS   int64
	IP      string // "" = no ip predicate
	MinLat  int64  // <0 = no latency predicate
	Fail    string // "" = no fail predicate
	SQL     string
}

// QuerySetConfig configures the query-set generator. The paper generates
// 6000 queries: six per tenant with different filtering predicates and
// time ranges over a 48-hour history.
type QuerySetConfig struct {
	Tenants        int
	PerTenant      int   // paper: 6
	HistoryStartMS int64 // start of the ingested history
	HistoryEndMS   int64 // end of the ingested history
	Seed           int64
}

// GenerateQueries builds the query set. Query shapes per tenant cycle
// through: full-range scan, narrow time slice, ip-equality, latency
// threshold, failure search, and a fully-predicated needle query.
func GenerateQueries(cfg QuerySetConfig) []QuerySpec {
	if cfg.PerTenant <= 0 {
		cfg.PerTenant = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.HistoryEndMS - cfg.HistoryStartMS
	if span <= 0 {
		span = 1
	}
	out := make([]QuerySpec, 0, cfg.Tenants*cfg.PerTenant)
	for t := 0; t < cfg.Tenants; t++ {
		for qi := 0; qi < cfg.PerTenant; qi++ {
			q := QuerySpec{Tenant: int64(t), MinLat: -1}
			switch qi % 6 {
			case 0: // full history scan
				q.StartMS, q.EndMS = cfg.HistoryStartMS, cfg.HistoryEndMS
			case 1: // narrow 1-hour slice
				off := rng.Int63n(max64(span-3600_000, 1))
				q.StartMS = cfg.HistoryStartMS + off
				q.EndMS = q.StartMS + 3600_000
			case 2: // ip equality over a half-history window
				q.StartMS = cfg.HistoryStartMS + rng.Int63n(max64(span/2, 1))
				q.EndMS = q.StartMS + span/2
				q.IP = fmt.Sprintf("192.168.%d.%d", rng.Intn(4), 1+rng.Intn(250))
			case 3: // slow requests
				q.StartMS, q.EndMS = cfg.HistoryStartMS, cfg.HistoryEndMS
				q.MinLat = 100
			case 4: // failures in a 6-hour window
				off := rng.Int63n(max64(span-6*3600_000, 1))
				q.StartMS = cfg.HistoryStartMS + off
				q.EndMS = q.StartMS + 6*3600_000
				q.Fail = "true"
			default: // fully predicated needle (the paper's sample SQL)
				off := rng.Int63n(max64(span-3600_000, 1))
				q.StartMS = cfg.HistoryStartMS + off
				q.EndMS = q.StartMS + 3600_000
				q.IP = fmt.Sprintf("192.168.%d.%d", rng.Intn(4), 1+rng.Intn(250))
				q.MinLat = 100
				q.Fail = "false"
			}
			if q.EndMS > cfg.HistoryEndMS {
				q.EndMS = cfg.HistoryEndMS
			}
			q.SQL = q.renderSQL()
			out = append(out, q)
		}
	}
	return out
}

func (q *QuerySpec) renderSQL() string {
	sql := fmt.Sprintf("SELECT log FROM request_log WHERE tenant_id = %d AND ts >= %d AND ts <= %d",
		q.Tenant, q.StartMS, q.EndMS)
	if q.IP != "" {
		sql += fmt.Sprintf(" AND ip = '%s'", q.IP)
	}
	if q.MinLat >= 0 {
		sql += fmt.Sprintf(" AND latency >= %d", q.MinLat)
	}
	if q.Fail != "" {
		sql += fmt.Sprintf(" AND fail = '%s'", q.Fail)
	}
	return sql
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
