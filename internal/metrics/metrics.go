// Package metrics provides the lightweight runtime instrumentation that
// LogStore's hotspot monitor and the experiment harness rely on: atomic
// counters, gauges, windowed rate meters, and latency histograms.
//
// The flow-control monitor (internal/flow) samples tenant, shard, and
// worker traffic through these primitives; the benchmark harness uses the
// histograms to report the latency distributions from the paper's
// evaluation section.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Rate measures events per second over a sliding window of fixed-width
// buckets. It is safe for concurrent use.
type Rate struct {
	mu         sync.Mutex
	buckets    []int64
	bucketSpan time.Duration
	head       int   // index of the current bucket
	headStart  int64 // unix nanos of the start of the head bucket
	now        func() time.Time
}

// NewRate returns a rate meter with the given number of buckets each
// spanning span. The effective window is buckets*span.
func NewRate(buckets int, span time.Duration) *Rate {
	if buckets < 1 {
		buckets = 1
	}
	if span <= 0 {
		span = time.Second
	}
	r := &Rate{
		buckets:    make([]int64, buckets),
		bucketSpan: span,
		now:        time.Now,
	}
	r.headStart = r.now().UnixNano()
	return r
}

// SetClock overrides the time source; used by deterministic simulations
// and tests.
func (r *Rate) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
	r.headStart = now().UnixNano()
}

// advance rotates the ring so the head bucket covers the current time.
// Caller must hold mu.
func (r *Rate) advance() {
	r.advanceTo(r.now().UnixNano())
}

// advanceTo rotates the ring to cover an externally-read timestamp.
// Caller must hold mu.
func (r *Rate) advanceTo(nowNS int64) {
	span := int64(r.bucketSpan)
	steps := (nowNS - r.headStart) / span
	if steps <= 0 {
		return
	}
	if steps >= int64(len(r.buckets)) {
		for i := range r.buckets {
			r.buckets[i] = 0
		}
		r.head = 0
		r.headStart = nowNS - nowNS%span
		return
	}
	for i := int64(0); i < steps; i++ {
		r.head = (r.head + 1) % len(r.buckets)
		r.buckets[r.head] = 0
	}
	r.headStart += steps * span
}

// AddAll records n into every rate with one shared clock read (the
// first rate's source), for callers that update several meters per
// event — the traffic collector touches three on every append. The
// rates should share a time source; after SetClock on any of them,
// pass that one first.
func AddAll(n int64, rates ...*Rate) {
	if len(rates) == 0 {
		return
	}
	first := rates[0]
	first.mu.Lock()
	nowNS := first.now().UnixNano()
	first.advanceTo(nowNS)
	first.buckets[first.head] += n
	first.mu.Unlock()
	for _, r := range rates[1:] {
		r.mu.Lock()
		r.advanceTo(nowNS)
		r.buckets[r.head] += n
		r.mu.Unlock()
	}
}

// Add records n events at the current time.
func (r *Rate) Add(n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	r.buckets[r.head] += n
}

// PerSecond returns the average events per second over the window.
func (r *Rate) PerSecond() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	var total int64
	for _, b := range r.buckets {
		total += b
	}
	window := time.Duration(len(r.buckets)) * r.bucketSpan
	return float64(total) / window.Seconds()
}

// Total returns the raw event count currently inside the window.
func (r *Rate) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advance()
	var total int64
	for _, b := range r.buckets {
		total += b
	}
	return total
}

// Histogram collects observations and reports quantiles. It keeps raw
// samples up to a cap, then switches to reservoir sampling so memory stays
// bounded during long experiments.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	seen    int64
	maxKeep int
	rng     uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram returns a histogram keeping at most maxKeep samples
// (reservoir-sampled beyond that). maxKeep <= 0 selects a default of 65536.
func NewHistogram(maxKeep int) *Histogram {
	if maxKeep <= 0 {
		maxKeep = 65536
	}
	return &Histogram{
		maxKeep: maxKeep,
		rng:     0x9E3779B97F4A7C15,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// xorshift64 advances the internal PRNG; deterministic, lock held by caller.
func (h *Histogram) xorshift64() uint64 {
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return h.rng
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.maxKeep {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling: replace a random slot with probability keep/seen.
	if idx := h.xorshift64() % uint64(h.seen); idx < uint64(h.maxKeep) {
		h.samples[idx] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seen
}

// Mean returns the mean of all observations (not just retained samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == 0 {
		return 0
	}
	return h.sum / float64(h.seen)
}

// Min returns the smallest observation, or 0 if none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0 <= q <= 1) over retained samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Quantiles returns several quantiles at once, sorting only once.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(qs))
	if len(h.samples) == 0 {
		return out
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	for i, q := range qs {
		switch {
		case q <= 0:
			out[i] = sorted[0]
		case q >= 1:
			out[i] = sorted[len(sorted)-1]
		default:
			idx := q * float64(len(sorted)-1)
			lo := int(idx)
			frac := idx - float64(lo)
			if lo+1 >= len(sorted) {
				out[i] = sorted[lo]
			} else {
				out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
			}
		}
	}
	return out
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.seen = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Stddev computes the population standard deviation of xs; it is used by
// the load-balancing experiments (Figure 13) to measure access skew.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}
