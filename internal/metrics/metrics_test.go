package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("Counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Errorf("Gauge = %d, want 42", g.Value())
	}
	if got := g.Add(-10); got != 32 {
		t.Errorf("Add returned %d, want 32", got)
	}
}

func TestRateWindow(t *testing.T) {
	var fake time.Time = time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return fake
	}
	tick := func(d time.Duration) {
		mu.Lock()
		fake = fake.Add(d)
		mu.Unlock()
	}

	r := NewRate(10, time.Second) // 10 second window
	r.SetClock(clock)

	// 100 events/sec for 5 seconds.
	for i := 0; i < 5; i++ {
		r.Add(100)
		tick(time.Second)
	}
	// Window is 10s, 500 events inside => 50/s.
	if got := r.PerSecond(); math.Abs(got-50) > 1e-9 {
		t.Errorf("PerSecond = %v, want 50", got)
	}
	if got := r.Total(); got != 500 {
		t.Errorf("Total = %d, want 500", got)
	}

	// Advance far past the window: everything expires.
	tick(30 * time.Second)
	if got := r.Total(); got != 0 {
		t.Errorf("Total after expiry = %d, want 0", got)
	}
}

func TestRatePartialExpiry(t *testing.T) {
	var fake time.Time = time.Unix(0, 0)
	clock := func() time.Time { return fake }
	r := NewRate(4, time.Second)
	r.SetClock(clock)

	r.Add(10) // bucket 0
	fake = fake.Add(time.Second)
	r.Add(20) // bucket 1
	fake = fake.Add(time.Second)
	r.Add(30) // bucket 2
	if got := r.Total(); got != 60 {
		t.Fatalf("Total = %d, want 60", got)
	}
	// Advance to t=4: the 4-bucket window now covers [1,5), so the
	// bucket holding the 10 events at t=0 rotates out.
	fake = fake.Add(2 * time.Second)
	if got := r.Total(); got != 50 {
		t.Errorf("Total after partial expiry = %d, want 50", got)
	}
	// Advance to t=5: the 20 events at t=1 expire too.
	fake = fake.Add(time.Second)
	if got := r.Total(); got != 30 {
		t.Errorf("Total after second expiry = %d, want 30", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	if got := h.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
	if got := h.Quantile(0.5); math.Abs(got-50.5) > 1 {
		t.Errorf("p50 = %v, want ~50.5", got)
	}
	if got := h.Quantile(0.99); got < 98 || got > 100 {
		t.Errorf("p99 = %v, want ~99", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	qs := h.Quantiles(0.25, 0.75)
	if qs[0] >= qs[1] {
		t.Errorf("Quantiles not ordered: %v", qs)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(128)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i % 1000))
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("Count = %d", got)
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n > 128 {
		t.Errorf("retained %d samples, cap is 128", n)
	}
	// Quantiles should still be roughly sane for a uniform 0..999 stream.
	if p50 := h.Quantile(0.5); p50 < 250 || p50 > 750 {
		t.Errorf("reservoir p50 = %v, expected near 500", p50)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset should clear state")
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev(nil); got != 0 {
		t.Errorf("Stddev(nil) = %v", got)
	}
	if got := Stddev([]float64{5, 5, 5}); got != 0 {
		t.Errorf("Stddev(const) = %v", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1024)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(base + j))
			}
		}(i * 1000)
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("Count = %d, want 4000", got)
	}
}
