package query

import (
	"fmt"
	"math"

	"logstore/internal/bitutil"
	"logstore/internal/index/sma"
	"logstore/internal/logblock"
	"logstore/internal/schema"
)

// ExecStats counts the work one LogBlock execution performed; the
// experiment harness sums these to show what data skipping saves.
type ExecStats struct {
	// BlocksExamined counts LogBlocks the executor opened.
	BlocksExamined int
	// BlocksSkippedBySMA counts LogBlocks skipped entirely because a
	// column SMA refuted a predicate (Figure 8, step 2).
	BlocksSkippedBySMA int
	// IndexLookups counts index probes (Figure 8, step 3).
	IndexLookups int
	// ColumnBlocksSkipped counts column blocks pruned by block-level
	// SMAs or by the accumulated row-id set (Figure 8, step 4).
	ColumnBlocksSkipped int
	// ColumnBlocksScanned counts column blocks decompressed and scanned.
	ColumnBlocksScanned int
	// RowsMatched counts rows surviving all predicates.
	RowsMatched int
}

// Add folds another stats value into s.
func (s *ExecStats) Add(o ExecStats) {
	s.BlocksExamined += o.BlocksExamined
	s.BlocksSkippedBySMA += o.BlocksSkippedBySMA
	s.IndexLookups += o.IndexLookups
	s.ColumnBlocksSkipped += o.ColumnBlocksSkipped
	s.ColumnBlocksScanned += o.ColumnBlocksScanned
	s.RowsMatched += o.RowsMatched
}

// ExecOptions toggles optimizations for ablation experiments.
type ExecOptions struct {
	// DataSkipping enables SMA pruning and index use; disabled, every
	// predicate is evaluated by scanning all column blocks (the
	// "W/o Data Skipping" baseline of Figure 15).
	DataSkipping bool
}

// MatchBlock computes the row ids within one LogBlock satisfying all of
// the query's predicates, using the multi-level skipping strategy.
func MatchBlock(r *logblock.Reader, q *Query, opts ExecOptions, stats *ExecStats) (*bitutil.Bitset, error) {
	m := r.Meta
	sch := m.Schema
	stats.BlocksExamined++

	acc := bitutil.NewBitset(m.RowCount)
	acc.SetAll()

	// Step 2: whole-LogBlock pruning via column SMAs.
	if opts.DataSkipping {
		for _, p := range q.Preds {
			if p.Match {
				continue
			}
			ci := sch.ColumnIndex(p.Col)
			if ci < 0 {
				return nil, fmt.Errorf("query: column %q not in LogBlock schema", p.Col)
			}
			if !m.Columns[ci].SMA.MayMatch(p.Op, p.Val) {
				stats.BlocksSkippedBySMA++
				acc.ClearAll()
				return acc, nil
			}
		}
	}

	// Per-predicate row sets, cheapest strategies first: indexes, then
	// residual scans narrowed by the accumulated set.
	var scanPreds []Pred
	for _, p := range q.Preds {
		if !opts.DataSkipping {
			scanPreds = append(scanPreds, p)
			continue
		}
		bs, used, err := indexLookup(r, p, stats)
		if err != nil {
			return nil, err
		}
		if used {
			acc.And(bs)
			if !acc.Any() {
				return acc, nil
			}
			// String equality via the inverted index is a candidate
			// set (the index analyzes case-insensitively); verify
			// exact equality against the stored values.
			if needVerify(sch, p) {
				if err := verifyScan(r, p, acc, opts, stats); err != nil {
					return nil, err
				}
				if !acc.Any() {
					return acc, nil
				}
			}
			continue
		}
		scanPreds = append(scanPreds, p)
	}
	for _, p := range scanPreds {
		if err := verifyScan(r, p, acc, opts, stats); err != nil {
			return nil, err
		}
		if !acc.Any() {
			return acc, nil
		}
	}
	stats.RowsMatched += acc.Count()
	return acc, nil
}

// needVerify reports whether an index hit set for p is a superset that
// must be re-checked row by row.
func needVerify(sch *schema.Schema, p Pred) bool {
	if p.Match {
		return false // MATCH semantics are defined by the analyzer
	}
	ci := sch.ColumnIndex(p.Col)
	return ci >= 0 && sch.Columns[ci].Type == schema.String
}

// indexLookup resolves a predicate through the column's index when the
// predicate shape allows it. used=false means no index path exists.
func indexLookup(r *logblock.Reader, p Pred, stats *ExecStats) (*bitutil.Bitset, bool, error) {
	m := r.Meta
	ci := m.Schema.ColumnIndex(p.Col)
	if ci < 0 {
		return nil, false, fmt.Errorf("query: column %q not in LogBlock schema", p.Col)
	}
	switch m.Columns[ci].Index {
	case schema.IndexInverted:
		if p.Match {
			ix, err := r.InvertedIndex(ci)
			if err != nil {
				return nil, false, err
			}
			stats.IndexLookups++
			bs, err := ix.LookupAll(p.Terms, m.RowCount)
			if err != nil {
				return nil, false, err
			}
			for _, prefix := range p.Prefixes {
				if !bs.Any() {
					break
				}
				pbs, err := ix.LookupPrefix(prefix, m.RowCount)
				if err != nil {
					return nil, false, err
				}
				bs.And(pbs)
			}
			return bs, true, nil
		}
		if p.Op == sma.EQ && p.Val.Kind == schema.String {
			ix, err := r.InvertedIndex(ci)
			if err != nil {
				return nil, false, err
			}
			stats.IndexLookups++
			bs, err := ix.LookupBitset(p.Val.S, m.RowCount)
			return bs, true, err
		}
	case schema.IndexBKD:
		if p.Match || p.Val.Kind != schema.Int64 {
			return nil, false, nil
		}
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch p.Op {
		case sma.EQ:
			lo, hi = p.Val.I, p.Val.I
		case sma.GE:
			lo = p.Val.I
		case sma.GT:
			if p.Val.I == math.MaxInt64 {
				return bitutil.NewBitset(m.RowCount), true, nil
			}
			lo = p.Val.I + 1
		case sma.LE:
			hi = p.Val.I
		case sma.LT:
			if p.Val.I == math.MinInt64 {
				return bitutil.NewBitset(m.RowCount), true, nil
			}
			hi = p.Val.I - 1
		default:
			return nil, false, nil // NE: index cannot help
		}
		tree, err := r.BKDIndex(ci)
		if err != nil {
			return nil, false, err
		}
		stats.IndexLookups++
		bs, err := tree.Range(lo, hi, m.RowCount)
		return bs, true, err
	}
	return nil, false, nil
}

// verifyScan narrows acc by evaluating p against the column's stored
// values, scanning only column blocks that can matter: blocks with no
// candidate row in acc are skipped outright (a word-level range probe),
// and (with skipping on) blocks whose block-level SMA refutes p are
// skipped too. Surviving blocks are decoded to typed vectors — through
// the decoded-vector cache when one is attached — and narrowed by the
// typed kernels.
func verifyScan(r *logblock.Reader, p Pred, acc *bitutil.Bitset, opts ExecOptions, stats *ExecStats) error {
	m := r.Meta
	ci := m.Schema.ColumnIndex(p.Col)
	if ci < 0 {
		return fmt.Errorf("query: column %q not in LogBlock schema", p.Col)
	}
	cm := m.Columns[ci]
	for bi := 0; bi < m.NumBlocks; bi++ {
		start, end := m.BlockRowRange(bi)
		// Candidate check: any accumulated bit in this block's range?
		if !acc.AnyInRange(start, end) {
			stats.ColumnBlocksSkipped++
			continue
		}
		// Block-level SMA (Figure 8, step 4).
		if opts.DataSkipping && !p.Match && !cm.Blocks[bi].SMA.MayMatch(p.Op, p.Val) {
			stats.ColumnBlocksSkipped++
			acc.ClearRange(start, end)
			continue
		}
		vec, err := r.BlockVector(ci, bi)
		if err != nil {
			return err
		}
		stats.ColumnBlocksScanned++
		EvalVector(p, vec, acc, start)
	}
	return nil
}

// EffectiveColumns resolves the projection to column ordinals.
func EffectiveColumns(q *Query, sch *schema.Schema) []int {
	if q.Star || q.CountStar {
		out := make([]int, len(sch.Columns))
		for i := range out {
			out[i] = i
		}
		if q.CountStar && q.GroupBy != "" {
			return []int{sch.ColumnIndex(q.GroupBy)}
		}
		if q.CountStar {
			return nil // counting needs no columns
		}
		return out
	}
	out := make([]int, 0, len(q.Select))
	for _, c := range q.Select {
		out = append(out, sch.ColumnIndex(c))
	}
	return out
}

// Materialize fetches the selected columns for the matched rows of one
// LogBlock, returning rows in row-id (= time) order, projected to cols.
func Materialize(r *logblock.Reader, matched *bitutil.Bitset, cols []int) ([]schema.Row, error) {
	n := matched.Count()
	if n == 0 || len(cols) == 0 {
		out := make([]schema.Row, n)
		for i := range out {
			out[i] = schema.Row{}
		}
		return out, nil
	}
	m := r.Meta
	out := make([]schema.Row, n)
	cells := make([]schema.Value, n*len(cols)) // one backing array for all rows
	for i := range out {
		out[i] = cells[i*len(cols) : (i+1)*len(cols) : (i+1)*len(cols)]
	}
	// Column-at-a-time: fetch each needed column block once, walking
	// matched rows by set-bit iteration rather than probing every bit.
	for colPos, ci := range cols {
		outIdx := 0
		for bi := 0; bi < m.NumBlocks; bi++ {
			start, end := m.BlockRowRange(bi)
			if !matched.AnyInRange(start, end) {
				continue
			}
			vec, err := r.BlockVector(ci, bi)
			if err != nil {
				return nil, err
			}
			if vec.Type == schema.Int64 {
				vals := vec.Ints.Vals
				for i := matched.NextSet(start); i >= 0 && i < end; i = matched.NextSet(i + 1) {
					out[outIdx][colPos] = schema.IntValue(vals[i-start])
					outIdx++
				}
				continue
			}
			// String rows: dictionary blocks repeat arena extents, so
			// consecutive equal extents share one materialized string.
			sv := vec.Strs
			var prevStart, prevLen uint32
			var prevStr string
			havePrev := false
			for i := matched.NextSet(start); i >= 0 && i < end; i = matched.NextSet(i + 1) {
				j := i - start
				if !havePrev || sv.Starts[j] != prevStart || sv.Lens[j] != prevLen {
					prevStart, prevLen = sv.Starts[j], sv.Lens[j]
					prevStr = sv.Value(j)
					havePrev = true
				}
				out[outIdx][colPos] = schema.StringValue(prevStr)
				outIdx++
			}
		}
	}
	return out, nil
}

// ExecuteBlock runs match + materialize for one LogBlock.
func ExecuteBlock(r *logblock.Reader, q *Query, opts ExecOptions, stats *ExecStats) ([]schema.Row, error) {
	matched, err := MatchBlock(r, q, opts, stats)
	if err != nil {
		return nil, err
	}
	if q.CountStar && q.GroupBy == "" {
		// Counting needs no materialization; the caller reads the
		// match count from the returned row count.
		n := matched.Count()
		return make([]schema.Row, n), nil
	}
	return Materialize(r, matched, EffectiveColumns(q, r.Meta.Schema))
}
