package query

import (
	"fmt"
	"math/rand"
	"testing"

	"logstore/internal/logblock"
	"logstore/internal/schema"
)

// buildBlock creates a single-tenant LogBlock with deterministic but
// varied data, returning the reader and the raw (time-sorted) rows.
func buildBlock(t testing.TB, n int, blockRows int) (*logblock.Reader, []schema.Row) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	rows := make([]schema.Row, n)
	for i := range rows {
		fail := "false"
		if rng.Intn(8) == 0 {
			fail = "true"
		}
		rows[i] = schema.Row{
			schema.IntValue(42),
			schema.IntValue(int64(1000 + i)),
			schema.StringValue(fmt.Sprintf("192.168.%d.%d", rng.Intn(2), 1+rng.Intn(30))),
			schema.StringValue(fmt.Sprintf("/api/v%d/query", rng.Intn(3))),
			schema.IntValue(int64(1 + rng.Intn(500))),
			schema.StringValue(fail),
			schema.StringValue(fmt.Sprintf("request served shard=%d attempt=%d", rng.Intn(4), i)),
		}
	}
	built, err := logblock.Build(schema.RequestLogSchema(), rows, logblock.BuildOptions{BlockRows: blockRows})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := built.Pack()
	if err != nil {
		t.Fatal(err)
	}
	r, err := logblock.OpenReader(logblock.BytesFetcher(packed))
	if err != nil {
		t.Fatal(err)
	}
	return r, rows
}

// bruteForce returns the row ids matching the query by full evaluation.
func bruteForce(q *Query, sch *schema.Schema, rows []schema.Row) []int {
	var out []int
	for i, r := range rows {
		if q.EvalRowAll(sch, r) {
			out = append(out, i)
		}
	}
	return out
}

var execQueries = []string{
	"SELECT log FROM request_log WHERE tenant_id = 42",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND ts >= 1100 AND ts <= 1300",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND ip = '192.168.0.7'",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND latency >= 400",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND latency < 10 AND fail = 'true'",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND fail = 'false' AND ip = '192.168.1.3' AND latency >= 100",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND log MATCH 'shard 2'",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND latency != 250",
	"SELECT log FROM request_log WHERE tenant_id = 99",
	"SELECT log FROM request_log WHERE tenant_id = 42 AND ts > 5000",
	"SELECT ip, latency FROM request_log WHERE tenant_id = 42 AND api = '/api/v1/query' AND latency <= 20",
}

func TestMatchBlockAgainstBruteForce(t *testing.T) {
	r, rows := buildBlock(t, 3000, 256)
	sch := schema.RequestLogSchema()
	for _, sql := range execQueries {
		q, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Validate(sch); err != nil {
			t.Fatal(err)
		}
		want := bruteForce(q, sch, rows)
		for _, skipping := range []bool{true, false} {
			var stats ExecStats
			bs, err := MatchBlock(r, q, ExecOptions{DataSkipping: skipping}, &stats)
			if err != nil {
				t.Fatalf("%q (skip=%v): %v", sql, skipping, err)
			}
			got := bs.Slice()
			if len(got) != len(want) {
				t.Fatalf("%q (skip=%v): %d matches, brute force %d", sql, skipping, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%q (skip=%v): row id mismatch at %d: %d vs %d", sql, skipping, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDataSkippingDoesLessWork(t *testing.T) {
	r, _ := buildBlock(t, 5000, 256)
	q, err := Parse("SELECT log FROM request_log WHERE tenant_id = 42 AND ts >= 1100 AND ts <= 1200 AND latency >= 400")
	if err != nil {
		t.Fatal(err)
	}
	var withStats, withoutStats ExecStats
	if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &withStats); err != nil {
		t.Fatal(err)
	}
	if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: false}, &withoutStats); err != nil {
		t.Fatal(err)
	}
	if withStats.ColumnBlocksScanned >= withoutStats.ColumnBlocksScanned {
		t.Errorf("skipping scanned %d column blocks, baseline %d",
			withStats.ColumnBlocksScanned, withoutStats.ColumnBlocksScanned)
	}
	if withStats.IndexLookups == 0 {
		t.Error("skipping path should use indexes")
	}
	if withoutStats.IndexLookups != 0 {
		t.Error("baseline should not use indexes")
	}
}

func TestWholeBlockSMASkip(t *testing.T) {
	r, _ := buildBlock(t, 1000, 128)
	// tenant_id = 7 refutes via the tenant column SMA (constant 42).
	q, err := Parse("SELECT log FROM request_log WHERE tenant_id = 7")
	if err != nil {
		t.Fatal(err)
	}
	var stats ExecStats
	bs, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Any() {
		t.Error("no rows should match")
	}
	if stats.BlocksSkippedBySMA != 1 {
		t.Errorf("BlocksSkippedBySMA = %d", stats.BlocksSkippedBySMA)
	}
	if stats.ColumnBlocksScanned != 0 {
		t.Errorf("skipped block still scanned %d column blocks", stats.ColumnBlocksScanned)
	}
}

func TestExecuteBlockProjection(t *testing.T) {
	r, rows := buildBlock(t, 500, 128)
	sch := schema.RequestLogSchema()
	q, err := Parse("SELECT ip, latency FROM request_log WHERE tenant_id = 42 AND latency >= 490")
	if err != nil {
		t.Fatal(err)
	}
	var stats ExecStats
	got, err := ExecuteBlock(r, q, ExecOptions{DataSkipping: true}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(q, sch, rows)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	ipIdx, latIdx := sch.ColumnIndex("ip"), sch.ColumnIndex("latency")
	for i, rowID := range want {
		if !got[i][0].Equal(rows[rowID][ipIdx]) || !got[i][1].Equal(rows[rowID][latIdx]) {
			t.Fatalf("row %d projection mismatch: %v", i, got[i])
		}
	}
}

func TestExecuteBlockCount(t *testing.T) {
	r, rows := buildBlock(t, 800, 100)
	sch := schema.RequestLogSchema()
	q, err := Parse("SELECT COUNT(*) FROM request_log WHERE tenant_id = 42 AND fail = 'true'")
	if err != nil {
		t.Fatal(err)
	}
	var stats ExecStats
	got, err := ExecuteBlock(r, q, ExecOptions{DataSkipping: true}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bruteForce(q, sch, rows)) {
		t.Fatalf("count = %d, brute force %d", len(got), len(bruteForce(q, sch, rows)))
	}
}

func TestMatchUnknownColumn(t *testing.T) {
	r, _ := buildBlock(t, 100, 50)
	q := &Query{Table: "request_log", Star: true,
		Preds: []Pred{{Col: "ghost", Op: 0, Val: schema.IntValue(1)}}}
	var stats ExecStats
	if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &stats); err == nil {
		t.Error("unknown predicate column should error")
	}
	if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: false}, &stats); err == nil {
		t.Error("unknown predicate column should error without skipping too")
	}
}

func TestResultMergeAndFinalize(t *testing.T) {
	sch := schema.RequestLogSchema()
	q, err := Parse("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1 GROUP BY ip ORDER BY count DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	a := NewResult(q, sch)
	a.AddRow(q, schema.Row{schema.StringValue("10.0.0.1")})
	a.AddRow(q, schema.Row{schema.StringValue("10.0.0.1")})
	a.AddRow(q, schema.Row{schema.StringValue("10.0.0.2")})
	b := NewResult(q, sch)
	b.AddRow(q, schema.Row{schema.StringValue("10.0.0.3")})
	b.AddRow(q, schema.Row{schema.StringValue("10.0.0.1")})
	a.Merge(b)
	if err := a.Finalize(q); err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 2 {
		t.Fatalf("groups = %+v", a.Groups)
	}
	if a.Groups[0].Key.S != "10.0.0.1" || a.Groups[0].Count != 3 {
		t.Errorf("top group = %+v", a.Groups[0])
	}
}

func TestResultCountMerge(t *testing.T) {
	sch := schema.RequestLogSchema()
	q, _ := Parse("SELECT COUNT(*) FROM request_log WHERE tenant_id = 1")
	a := NewResult(q, sch)
	a.Count = 5
	b := NewResult(q, sch)
	b.Count = 7
	a.Merge(b)
	a.Merge(nil)
	if a.Count != 12 {
		t.Errorf("Count = %d", a.Count)
	}
	if len(a.Columns) != 1 || a.Columns[0] != "count" {
		t.Errorf("Columns = %v", a.Columns)
	}
}

func TestResultOrderByColumnAndLimit(t *testing.T) {
	sch := schema.RequestLogSchema()
	q, err := Parse("SELECT ip, latency FROM request_log WHERE tenant_id = 1 ORDER BY latency DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	r := NewResult(q, sch)
	for _, lat := range []int64{5, 99, 42} {
		r.AddRow(q, schema.Row{schema.StringValue("ip"), schema.IntValue(lat)})
	}
	if err := r.Finalize(q); err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][1].I != 99 || r.Rows[1][1].I != 42 {
		t.Fatalf("rows = %+v", r.Rows)
	}
	// ORDER BY a column outside the projection fails.
	q2, _ := Parse("SELECT ip FROM request_log ORDER BY latency")
	r2 := NewResult(q2, sch)
	if err := r2.Finalize(q2); err == nil {
		t.Error("ORDER BY outside projection should fail at Finalize")
	}
}

func BenchmarkMatchBlockSkipping(b *testing.B) {
	r, _ := buildBlock(b, 20000, 4096)
	q, err := Parse("SELECT log FROM request_log WHERE tenant_id = 42 AND ts >= 2000 AND ts <= 3000 AND latency >= 400")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats ExecStats
		if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchBlockFullScan(b *testing.B) {
	r, _ := buildBlock(b, 20000, 4096)
	q, err := Parse("SELECT log FROM request_log WHERE tenant_id = 42 AND ts >= 2000 AND ts <= 3000 AND latency >= 400")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats ExecStats
		if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: false}, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMatchPrefixAgainstBruteForce(t *testing.T) {
	r, rows := buildBlock(t, 2000, 256)
	sch := schema.RequestLogSchema()
	for _, sql := range []string{
		"SELECT log FROM request_log WHERE tenant_id = 42 AND log MATCH 'serv*'",
		"SELECT log FROM request_log WHERE tenant_id = 42 AND log MATCH 'request shard*'",
		"SELECT log FROM request_log WHERE tenant_id = 42 AND api MATCH 'v1*'",
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(q, sch, rows)
		for _, skipping := range []bool{true, false} {
			var stats ExecStats
			bs, err := MatchBlock(r, q, ExecOptions{DataSkipping: skipping}, &stats)
			if err != nil {
				t.Fatalf("%q: %v", sql, err)
			}
			got := bs.Slice()
			if len(got) != len(want) {
				t.Fatalf("%q (skip=%v): %d matches, brute force %d", sql, skipping, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%q: row mismatch", sql)
				}
			}
		}
	}
}
