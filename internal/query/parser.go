package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"logstore/internal/index/inverted"
	"logstore/internal/index/sma"
	"logstore/internal/schema"
)

// Parse parses the LogStore SQL subset:
//
//	SELECT * | COUNT(*) | col[, col...]
//	FROM table
//	[WHERE pred AND pred ...]
//	[GROUP BY col] [ORDER BY col|COUNT(*) [ASC|DESC]] [LIMIT n]
//
// where pred is `col (=|!=|<>|<|<=|>|>=) literal` or `col MATCH 'text'`.
// Literals are single-quoted strings or decimal integers.
func Parse(sql string) (*Query, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("query: parse %q: %w", sql, err)
	}
	return q, nil
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokSymbol // punctuation and operators
	tokEOF
)

type token struct {
	kind tokKind
	text string // normalized: idents lowercased, symbols literal
	raw  string
}

func tokenize(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(sql) {
					return nil, fmt.Errorf("unterminated string literal")
				}
				if sql[j] == '\'' {
					// '' escapes a quote.
					if j+1 < len(sql) && sql[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(sql[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), raw: sql[i : j+1]})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(sql) && sql[j] >= '0' && sql[j] <= '9' {
				j++
			}
			if j == i+1 && c == '-' {
				return nil, fmt.Errorf("stray '-'")
			}
			toks = append(toks, token{kind: tokNumber, text: sql[i:j], raw: sql[i:j]})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(sql) && isIdentPart(rune(sql[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(sql[i:j]), raw: sql[i:j]})
			i = j
		case strings.ContainsRune("=<>!,*()", rune(c)):
			// Two-char operators first.
			if i+1 < len(sql) {
				two := sql[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
					toks = append(toks, token{kind: tokSymbol, text: two, raw: two})
					i += 2
					continue
				}
			}
			toks = append(toks, token{kind: tokSymbol, text: string(c), raw: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return append(toks, token{kind: tokEOF}), nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdent(word string) error {
	if !p.accept(tokIdent, word) {
		return fmt.Errorf("expected %s, got %q", strings.ToUpper(word), p.peek().raw)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectIdent("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectIdent("from"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("expected table name, got %q", tbl.raw)
	}
	q.Table = tbl.text

	if p.accept(tokIdent, "where") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.accept(tokIdent, "and") {
				break
			}
		}
	}
	if p.accept(tokIdent, "group") {
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		col := p.next()
		if col.kind != tokIdent {
			return nil, fmt.Errorf("expected GROUP BY column, got %q", col.raw)
		}
		q.GroupBy = col.text
	}
	if p.accept(tokIdent, "order") {
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		t := p.next()
		switch {
		case t.kind == tokIdent && t.text == "count":
			// Allow ORDER BY COUNT(*) spelled with parens.
			if p.accept(tokSymbol, "(") {
				if !p.accept(tokSymbol, "*") || !p.accept(tokSymbol, ")") {
					return nil, fmt.Errorf("expected COUNT(*)")
				}
			}
			q.OrderBy = "count"
		case t.kind == tokIdent:
			q.OrderBy = t.text
		default:
			return nil, fmt.Errorf("expected ORDER BY target, got %q", t.raw)
		}
		if p.accept(tokIdent, "desc") {
			q.Desc = true
		} else {
			p.accept(tokIdent, "asc")
		}
	}
	if p.accept(tokIdent, "limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("expected LIMIT count, got %q", t.raw)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad LIMIT %q", t.raw)
		}
		q.Limit = n
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("trailing input at %q", p.peek().raw)
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	if p.accept(tokSymbol, "*") {
		q.Star = true
		return nil
	}
	if p.accept(tokIdent, "count") {
		if !p.accept(tokSymbol, "(") || !p.accept(tokSymbol, "*") || !p.accept(tokSymbol, ")") {
			return fmt.Errorf("expected COUNT(*)")
		}
		q.CountStar = true
		return nil
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("expected column name, got %q", t.raw)
		}
		// The BI form "SELECT key, COUNT(*) ... GROUP BY key".
		if t.text == "count" && p.accept(tokSymbol, "(") {
			if !p.accept(tokSymbol, "*") || !p.accept(tokSymbol, ")") {
				return fmt.Errorf("expected COUNT(*)")
			}
			q.CountStar = true
		} else {
			q.Select = append(q.Select, t.text)
		}
		if !p.accept(tokSymbol, ",") {
			return nil
		}
	}
}

var opTable = map[string]sma.Op{
	"=": sma.EQ, "!=": sma.NE, "<>": sma.NE,
	"<": sma.LT, "<=": sma.LE, ">": sma.GT, ">=": sma.GE,
}

func (p *parser) parsePred() (Pred, error) {
	col := p.next()
	if col.kind != tokIdent {
		return Pred{}, fmt.Errorf("expected column name, got %q", col.raw)
	}
	if p.accept(tokIdent, "match") {
		lit := p.next()
		if lit.kind != tokString {
			return Pred{}, fmt.Errorf("MATCH needs a string literal, got %q", lit.raw)
		}
		// A word with a trailing '*' is a prefix query; everything else
		// analyzes into exact terms.
		var terms, prefixes []string
		for _, word := range strings.Fields(lit.text) {
			if strings.HasSuffix(word, "*") && len(word) > 1 {
				toks := inverted.Tokenize(strings.TrimSuffix(word, "*"))
				if len(toks) > 0 {
					// Tokens before the last are exact; the last carries
					// the prefix semantics ("api/v1*" → api AND v1*).
					terms = append(terms, toks[:len(toks)-1]...)
					prefixes = append(prefixes, toks[len(toks)-1])
				}
				continue
			}
			terms = append(terms, inverted.Tokenize(word)...)
		}
		if len(terms) == 0 && len(prefixes) == 0 {
			return Pred{}, fmt.Errorf("MATCH text %q has no terms", lit.text)
		}
		return Pred{Col: col.text, Match: true, Terms: terms, Prefixes: prefixes}, nil
	}
	opTok := p.next()
	op, ok := opTable[opTok.text]
	if opTok.kind != tokSymbol || !ok {
		return Pred{}, fmt.Errorf("expected comparison operator, got %q", opTok.raw)
	}
	lit := p.next()
	switch lit.kind {
	case tokString:
		return Pred{Col: col.text, Op: op, Val: schema.StringValue(lit.text)}, nil
	case tokNumber:
		v, err := strconv.ParseInt(lit.text, 10, 64)
		if err != nil {
			return Pred{}, fmt.Errorf("bad number %q", lit.raw)
		}
		return Pred{Col: col.text, Op: op, Val: schema.IntValue(v)}, nil
	default:
		return Pred{}, fmt.Errorf("expected literal, got %q", lit.raw)
	}
}
