package query

import (
	"strings"
	"testing"

	"logstore/internal/index/sma"
	"logstore/internal/schema"
)

func TestParsePaperTemplate(t *testing.T) {
	sql := `SELECT log FROM request_log WHERE tenant_id = 12276
		AND ts >= 1604995200000 AND ts <= 1604998800000
		AND ip = '192.168.0.1' AND latency >= 100 AND fail = 'false'`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "request_log" || len(q.Select) != 1 || q.Select[0] != "log" {
		t.Fatalf("projection: %+v", q)
	}
	if len(q.Preds) != 6 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	if err := q.Validate(schema.RequestLogSchema()); err != nil {
		t.Fatal(err)
	}
	tenant, minTS, maxTS, ok := q.KeyRange(schema.RequestLogSchema())
	if !ok || tenant != 12276 || minTS != 1604995200000 || maxTS != 1604998800000 {
		t.Fatalf("KeyRange = %d [%d, %d] %v", tenant, minTS, maxTS, ok)
	}
}

func TestParseShapes(t *testing.T) {
	cases := []string{
		"SELECT * FROM request_log",
		"SELECT COUNT(*) FROM request_log WHERE tenant_id = 1",
		"SELECT ip, latency FROM request_log WHERE latency > 100",
		"SELECT log FROM request_log WHERE log MATCH 'cache miss'",
		"SELECT ip, COUNT(*) FROM request_log WHERE tenant_id = 1 GROUP BY ip ORDER BY count DESC LIMIT 10",
		"SELECT COUNT(*) FROM request_log WHERE tenant_id = 1 GROUP BY api ORDER BY COUNT(*) DESC LIMIT 5",
		"SELECT log FROM request_log WHERE latency != 5 AND fail <> 'true'",
		"SELECT log FROM request_log WHERE ts >= -100 LIMIT 3",
		"select log from request_log where IP = '10.0.0.1'",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseGroupBySelectForm(t *testing.T) {
	// "SELECT ip, COUNT(*)" is normalized: the parser accepts the list
	// form used in BI dashboards.
	q, err := Parse("SELECT ip, COUNT(*) FROM request_log GROUP BY ip")
	if err != nil {
		t.Fatal(err)
	}
	if !q.CountStar || q.GroupBy != "ip" {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"INSERT INTO x VALUES (1)",
		"SELECT FROM request_log",
		"SELECT log request_log",
		"SELECT log FROM",
		"SELECT log FROM request_log WHERE",
		"SELECT log FROM request_log WHERE latency",
		"SELECT log FROM request_log WHERE latency ==",
		"SELECT log FROM request_log WHERE latency = ",
		"SELECT log FROM request_log WHERE log MATCH 42",
		"SELECT log FROM request_log WHERE log MATCH '...'",
		"SELECT log FROM request_log WHERE ip = 'unterminated",
		"SELECT log FROM request_log LIMIT 'x'",
		"SELECT log FROM request_log LIMIT -1",
		"SELECT log FROM request_log GROUP ip",
		"SELECT log FROM request_log trailing garbage",
		"SELECT log FROM request_log WHERE a = 1 AND",
		"SELECT COUNT(* FROM request_log",
		"SELECT log FROM request_log WHERE x = 1 ; DROP TABLE",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseQuotedEscape(t *testing.T) {
	q, err := Parse("SELECT log FROM request_log WHERE log = 'it''s fine'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Val.S != "it's fine" {
		t.Errorf("escaped literal = %q", q.Preds[0].Val.S)
	}
}

func TestValidateRejections(t *testing.T) {
	sch := schema.RequestLogSchema()
	cases := []string{
		"SELECT log FROM wrong_table",
		"SELECT missing FROM request_log",
		"SELECT log FROM request_log WHERE missing = 1",
		"SELECT log FROM request_log WHERE latency MATCH 'x'",
		"SELECT log FROM request_log WHERE latency = 'str'",
		"SELECT log FROM request_log WHERE ip = 5",
		"SELECT COUNT(*) FROM request_log GROUP BY missing",
		"SELECT ip FROM request_log GROUP BY ip",
		"SELECT log FROM request_log ORDER BY missing",
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			// Some of these fail at parse; either is acceptable.
			continue
		}
		if err := q.Validate(sch); err == nil {
			t.Errorf("Validate(%q) should fail", sql)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	sql := "SELECT log FROM request_log WHERE tenant_id = 1 AND ip = '10.0.0.1' AND log MATCH 'cache miss' ORDER BY ts DESC LIMIT 7"
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("unstable rendering:\n%s\n%s", q.String(), q2.String())
	}
}

func TestKeyRangeVariants(t *testing.T) {
	sch := schema.RequestLogSchema()
	q, err := Parse("SELECT log FROM request_log WHERE tenant_id = 5 AND ts > 100 AND ts < 200")
	if err != nil {
		t.Fatal(err)
	}
	tenant, lo, hi, ok := q.KeyRange(sch)
	if !ok || tenant != 5 || lo != 101 || hi != 199 {
		t.Errorf("strict bounds: %d [%d, %d] %v", tenant, lo, hi, ok)
	}
	// No tenant predicate.
	q2, _ := Parse("SELECT log FROM request_log WHERE ts >= 10")
	if _, _, _, ok := q2.KeyRange(sch); ok {
		t.Error("missing tenant should report !ok")
	}
	// ts equality pins both bounds.
	q3, _ := Parse("SELECT log FROM request_log WHERE tenant_id = 1 AND ts = 42")
	_, lo, hi, _ = q3.KeyRange(sch)
	if lo != 42 || hi != 42 {
		t.Errorf("equality bounds [%d, %d]", lo, hi)
	}
}

func TestPredEvalRow(t *testing.T) {
	p := Pred{Col: "latency", Op: sma.GE, Val: schema.IntValue(100)}
	if !p.EvalRow(schema.IntValue(100)) || !p.EvalRow(schema.IntValue(101)) || p.EvalRow(schema.IntValue(99)) {
		t.Error("GE eval broken")
	}
	// Kind mismatch is simply false.
	if p.EvalRow(schema.StringValue("100")) {
		t.Error("kind mismatch should be false")
	}
	m := Pred{Col: "log", Match: true, Terms: []string{"cache", "miss"}}
	if !m.EvalRow(schema.StringValue("L2 Cache MISS on shard 3")) {
		t.Error("match should hit")
	}
	if m.EvalRow(schema.StringValue("cache hit")) {
		t.Error("partial match should miss")
	}
	if m.EvalRow(schema.IntValue(1)) {
		t.Error("match on int should miss")
	}
	// All comparison ops.
	for _, tc := range []struct {
		op   sma.Op
		v    int64
		want bool
	}{
		{sma.EQ, 5, true}, {sma.EQ, 6, false},
		{sma.NE, 5, false}, {sma.NE, 6, true},
		{sma.LT, 6, true}, {sma.LT, 5, false},
		{sma.LE, 5, true}, {sma.LE, 4, false},
		{sma.GT, 4, true}, {sma.GT, 5, false},
		{sma.GE, 5, true}, {sma.GE, 6, false},
	} {
		p := Pred{Col: "x", Op: tc.op, Val: schema.IntValue(tc.v)}
		if got := p.EvalRow(schema.IntValue(5)); got != tc.want {
			t.Errorf("5 %v %d = %v, want %v", tc.op, tc.v, got, tc.want)
		}
	}
}

func TestPredString(t *testing.T) {
	p := Pred{Col: "ip", Op: sma.EQ, Val: schema.StringValue("10.0.0.1")}
	if !strings.Contains(p.String(), "'10.0.0.1'") {
		t.Errorf("Pred.String = %q", p.String())
	}
	m := Pred{Col: "log", Match: true, Terms: []string{"a", "b"}}
	if !strings.Contains(m.String(), "MATCH") {
		t.Errorf("match Pred.String = %q", m.String())
	}
}

func TestParseMatchPrefix(t *testing.T) {
	q, err := Parse("SELECT log FROM request_log WHERE tenant_id = 1 AND log MATCH 'cache mis* err*'")
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[1]
	if !p.Match || len(p.Terms) != 1 || p.Terms[0] != "cache" {
		t.Fatalf("terms = %v", p.Terms)
	}
	if len(p.Prefixes) != 2 || p.Prefixes[0] != "mis" || p.Prefixes[1] != "err" {
		t.Fatalf("prefixes = %v", p.Prefixes)
	}
	// Eval semantics.
	if !p.EvalRow(schema.StringValue("ERRONEOUS cache MISfire")) {
		t.Error("prefix match should hit")
	}
	if p.EvalRow(schema.StringValue("cache hit, no errors... wait err yes")) {
		// "err" prefix matches "err"/"errors"; "mis" must fail.
		t.Error("missing 'mis*' should miss")
	}
	// Renders and re-parses stably.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("unstable: %q vs %q", q.String(), q2.String())
	}
	// A lone '*' is not a term.
	if _, err := Parse("SELECT log FROM request_log WHERE log MATCH '*'"); err == nil {
		t.Error("bare star accepted")
	}
}
