// Package query implements LogStore's query stack: a parser for the
// SQL subset the paper's retrieval template uses (§5.1), predicate
// evaluation over rows, the multi-level data-skipping executor over
// LogBlocks (Figure 8: LogBlock map → column SMA → index lookup →
// column-block SMA → residual scan), and the lightweight aggregation
// (COUNT/GROUP BY) that serves the paper's "which IP addresses
// frequently accessed this API" BI queries.
package query

import (
	"fmt"
	"strings"

	"logstore/internal/index/inverted"
	"logstore/internal/index/sma"
	"logstore/internal/schema"
)

// Pred is one conjunct of a WHERE clause: either a comparison
// (col op literal) or a full-text MATCH over an analyzed string column.
type Pred struct {
	Col   string
	Op    sma.Op
	Val   schema.Value
	Match bool     // true: full-text match; Op/Val unused
	Terms []string // analyzed MATCH terms (exact)
	// Prefixes are MATCH terms written with a trailing '*' (Lucene-style
	// prefix queries): each must prefix-match some token of the value.
	Prefixes []string
}

// String renders the predicate in SQL.
func (p Pred) String() string {
	if p.Match {
		parts := append([]string{}, p.Terms...)
		for _, pre := range p.Prefixes {
			parts = append(parts, pre+"*")
		}
		return fmt.Sprintf("%s MATCH '%s'", p.Col, strings.Join(parts, " "))
	}
	if p.Val.Kind == schema.String {
		return fmt.Sprintf("%s %s '%s'", p.Col, p.Op, p.Val.S)
	}
	return fmt.Sprintf("%s %s %d", p.Col, p.Op, p.Val.I)
}

// EvalRow evaluates the predicate against a row value.
func (p Pred) EvalRow(v schema.Value) bool {
	if p.Match {
		if v.Kind != schema.String {
			return false
		}
		toks := inverted.Tokenize(v.S)
		set := make(map[string]bool, len(toks))
		for _, t := range toks {
			set[t] = true
		}
		lower := strings.ToLower(v.S)
		for _, term := range p.Terms {
			if !set[term] && term != lower {
				return false
			}
		}
		for _, prefix := range p.Prefixes {
			found := false
			for _, t := range toks {
				if strings.HasPrefix(t, prefix) {
					found = true
					break
				}
			}
			if !found && !strings.HasPrefix(lower, prefix) {
				return false
			}
		}
		return true
	}
	if v.Kind != p.Val.Kind {
		return false
	}
	c := v.Compare(p.Val)
	switch p.Op {
	case sma.EQ:
		return c == 0
	case sma.NE:
		return c != 0
	case sma.LT:
		return c < 0
	case sma.LE:
		return c <= 0
	case sma.GT:
		return c > 0
	case sma.GE:
		return c >= 0
	default:
		return false
	}
}

// Query is a parsed statement.
type Query struct {
	Table     string
	Select    []string // empty with Star/CountStar
	Star      bool
	CountStar bool
	Preds     []Pred
	GroupBy   string
	OrderBy   string // column name or "count"
	Desc      bool
	Limit     int // 0 = unlimited
}

// String renders the query back to SQL (diagnostics).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case q.CountStar:
		sb.WriteString("COUNT(*)")
	case q.Star:
		sb.WriteString("*")
	default:
		sb.WriteString(strings.Join(q.Select, ", "))
	}
	fmt.Fprintf(&sb, " FROM %s", q.Table)
	if len(q.Preds) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range q.Preds {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&sb, " GROUP BY %s", q.GroupBy)
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&sb, " ORDER BY %s", q.OrderBy)
		if q.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// Validate type-checks the query against a schema.
func (q *Query) Validate(sch *schema.Schema) error {
	if q.Table != sch.Name {
		return fmt.Errorf("query: unknown table %q", q.Table)
	}
	for _, c := range q.Select {
		if sch.ColumnIndex(c) < 0 {
			return fmt.Errorf("query: unknown column %q", c)
		}
	}
	for _, p := range q.Preds {
		ci := sch.ColumnIndex(p.Col)
		if ci < 0 {
			return fmt.Errorf("query: unknown column %q in predicate", p.Col)
		}
		col := sch.Columns[ci]
		if p.Match {
			if col.Type != schema.String {
				return fmt.Errorf("query: MATCH on non-string column %q", p.Col)
			}
			continue
		}
		if p.Val.Kind != col.Type {
			return fmt.Errorf("query: predicate on %q compares %v literal to %v column",
				p.Col, p.Val.Kind, col.Type)
		}
	}
	if q.GroupBy != "" {
		if sch.ColumnIndex(q.GroupBy) < 0 {
			return fmt.Errorf("query: unknown GROUP BY column %q", q.GroupBy)
		}
		if !q.CountStar {
			return fmt.Errorf("query: GROUP BY requires COUNT(*)")
		}
	} else if q.CountStar && len(q.Select) > 0 {
		return fmt.Errorf("query: mixing COUNT(*) with columns requires GROUP BY")
	}
	if q.OrderBy != "" && q.OrderBy != "count" && sch.ColumnIndex(q.OrderBy) < 0 {
		return fmt.Errorf("query: unknown ORDER BY column %q", q.OrderBy)
	}
	return nil
}

// KeyRange extracts the tenant equality and timestamp bounds the
// planner routes and prunes with. ok is false when no tenant equality
// predicate exists (LogStore queries are per-tenant).
func (q *Query) KeyRange(sch *schema.Schema) (tenant int64, minTS, maxTS int64, ok bool) {
	minTS = -1 << 62
	maxTS = 1<<62 - 1
	for _, p := range q.Preds {
		if p.Match {
			continue
		}
		switch p.Col {
		case sch.TenantCol:
			if p.Op == sma.EQ {
				tenant = p.Val.I
				ok = true
			}
		case sch.TimeCol:
			switch p.Op {
			case sma.GE:
				if p.Val.I > minTS {
					minTS = p.Val.I
				}
			case sma.GT:
				if p.Val.I+1 > minTS {
					minTS = p.Val.I + 1
				}
			case sma.LE:
				if p.Val.I < maxTS {
					maxTS = p.Val.I
				}
			case sma.LT:
				if p.Val.I-1 < maxTS {
					maxTS = p.Val.I - 1
				}
			case sma.EQ:
				if p.Val.I > minTS {
					minTS = p.Val.I
				}
				if p.Val.I < maxTS {
					maxTS = p.Val.I
				}
			}
		}
	}
	return
}

// EvalRowAll evaluates every predicate against a full row.
func (q *Query) EvalRowAll(sch *schema.Schema, row schema.Row) bool {
	for _, p := range q.Preds {
		ci := sch.ColumnIndex(p.Col)
		if ci < 0 || !p.EvalRow(row[ci]) {
			return false
		}
	}
	return true
}

// CompiledPred is a predicate with its column ordinal resolved, so
// per-row evaluation avoids name lookups on scan-heavy paths.
type CompiledPred struct {
	Col  int
	Pred Pred
}

// Compile resolves predicate column ordinals against a schema.
func (q *Query) Compile(sch *schema.Schema) ([]CompiledPred, error) {
	out := make([]CompiledPred, 0, len(q.Preds))
	for _, p := range q.Preds {
		ci := sch.ColumnIndex(p.Col)
		if ci < 0 {
			return nil, fmt.Errorf("query: unknown column %q in predicate", p.Col)
		}
		out = append(out, CompiledPred{Col: ci, Pred: p})
	}
	return out, nil
}

// EvalCompiled evaluates a compiled predicate list against a row.
func EvalCompiled(preds []CompiledPred, row schema.Row) bool {
	for _, cp := range preds {
		if !cp.Pred.EvalRow(row[cp.Col]) {
			return false
		}
	}
	return true
}
