package query

import (
	"logstore/internal/bitutil"
	"logstore/internal/index/sma"
	"logstore/internal/logblock"
	"logstore/internal/schema"
)

// Typed predicate kernels: the vectorized replacements for row-at-a-time
// Pred.EvalRow on the residual-scan path. Each kernel narrows the
// accumulator bitset over one column block's row range, visiting only
// candidate bits word by word and clearing non-matches in place. The
// comparison is hoisted out of the loop by switching on the operator
// once per block instead of once per row.

// EvalInt64s narrows acc over rows [start, start+len(vals)) by
// evaluating p against the unboxed int64 column values.
func EvalInt64s(p Pred, vals []int64, acc *bitutil.Bitset, start int) {
	end := start + len(vals)
	if p.Match || p.Val.Kind != schema.Int64 {
		// MATCH and type-mismatched comparisons never hold on an int64
		// column (EvalRow returns false), so no candidate survives.
		acc.ClearRange(start, end)
		return
	}
	x := p.Val.I
	switch p.Op {
	case sma.EQ:
		acc.FilterRange(start, end, func(i int) bool { return vals[i-start] == x })
	case sma.NE:
		acc.FilterRange(start, end, func(i int) bool { return vals[i-start] != x })
	case sma.LT:
		acc.FilterRange(start, end, func(i int) bool { return vals[i-start] < x })
	case sma.LE:
		acc.FilterRange(start, end, func(i int) bool { return vals[i-start] <= x })
	case sma.GT:
		acc.FilterRange(start, end, func(i int) bool { return vals[i-start] > x })
	case sma.GE:
		acc.FilterRange(start, end, func(i int) bool { return vals[i-start] >= x })
	default:
		acc.ClearRange(start, end)
	}
}

// compareBytesString is bytes.Compare against a string without
// converting either side (schema.Value.Compare is byte-wise too).
func compareBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) == len(s):
		return 0
	case len(b) < len(s):
		return -1
	default:
		return 1
	}
}

// EvalStrings narrows acc over rows [start, start+sv.Len()) by
// evaluating p against the string vector's arena bytes. Comparison
// predicates never copy the value out of the arena; MATCH (which
// tokenizes) boxes only the candidate rows it visits.
func EvalStrings(p Pred, sv *logblock.StringVector, acc *bitutil.Bitset, start int) {
	end := start + sv.Len()
	if p.Match {
		acc.FilterRange(start, end, func(i int) bool {
			return p.EvalRow(schema.StringValue(sv.Value(i - start)))
		})
		return
	}
	if p.Val.Kind != schema.String {
		acc.ClearRange(start, end)
		return
	}
	s := p.Val.S
	switch p.Op {
	case sma.EQ:
		// string(b) == s compiles to an allocation-free comparison.
		acc.FilterRange(start, end, func(i int) bool { return string(sv.Bytes(i-start)) == s })
	case sma.NE:
		acc.FilterRange(start, end, func(i int) bool { return string(sv.Bytes(i-start)) != s })
	case sma.LT:
		acc.FilterRange(start, end, func(i int) bool { return compareBytesString(sv.Bytes(i-start), s) < 0 })
	case sma.LE:
		acc.FilterRange(start, end, func(i int) bool { return compareBytesString(sv.Bytes(i-start), s) <= 0 })
	case sma.GT:
		acc.FilterRange(start, end, func(i int) bool { return compareBytesString(sv.Bytes(i-start), s) > 0 })
	case sma.GE:
		acc.FilterRange(start, end, func(i int) bool { return compareBytesString(sv.Bytes(i-start), s) >= 0 })
	default:
		acc.ClearRange(start, end)
	}
}

// EvalVector dispatches to the typed kernel for one decoded block.
func EvalVector(p Pred, vec *logblock.Vector, acc *bitutil.Bitset, start int) {
	if vec.Type == schema.Int64 {
		EvalInt64s(p, vec.Ints.Vals, acc, start)
	} else {
		EvalStrings(p, vec.Strs, acc, start)
	}
}
