package query

import (
	"fmt"
	"math/rand"
	"testing"

	"logstore/internal/bitutil"
	"logstore/internal/index/sma"
	"logstore/internal/logblock"
	"logstore/internal/schema"
)

// The property: the vectorized MatchBlock must be observationally
// identical to a scalar row-at-a-time reference — bit-identical match
// sets and identical ExecStats — over random schemas, blocks, and
// predicates, with data skipping both on and off.

// refVerifyScan is the scalar reference for verifyScan: boxed values,
// Pred.EvalRow per row, bit-at-a-time candidate probing. It must mirror
// verifyScan's skip accounting exactly.
func refVerifyScan(r *logblock.Reader, p Pred, acc *bitutil.Bitset, opts ExecOptions, stats *ExecStats) error {
	m := r.Meta
	ci := m.Schema.ColumnIndex(p.Col)
	if ci < 0 {
		return fmt.Errorf("query: column %q not in LogBlock schema", p.Col)
	}
	cm := m.Columns[ci]
	for bi := 0; bi < m.NumBlocks; bi++ {
		start, end := m.BlockRowRange(bi)
		any := false
		for i := start; i < end; i++ {
			if acc.Test(i) {
				any = true
				break
			}
		}
		if !any {
			stats.ColumnBlocksSkipped++
			continue
		}
		if opts.DataSkipping && !p.Match && !cm.Blocks[bi].SMA.MayMatch(p.Op, p.Val) {
			stats.ColumnBlocksSkipped++
			for i := start; i < end; i++ {
				acc.Clear(i)
			}
			continue
		}
		vals, _, err := r.BlockValues(ci, bi)
		if err != nil {
			return err
		}
		stats.ColumnBlocksScanned++
		for i := start; i < end; i++ {
			if acc.Test(i) && !p.EvalRow(vals[i-start]) {
				acc.Clear(i)
			}
		}
	}
	return nil
}

// refMatchBlock is the scalar reference for MatchBlock: identical
// structure (column SMA pruning, index lookups, residual scans) with
// refVerifyScan in place of the vectorized kernels.
func refMatchBlock(r *logblock.Reader, q *Query, opts ExecOptions, stats *ExecStats) (*bitutil.Bitset, error) {
	m := r.Meta
	sch := m.Schema
	stats.BlocksExamined++
	acc := bitutil.NewBitset(m.RowCount)
	acc.SetAll()
	if opts.DataSkipping {
		for _, p := range q.Preds {
			if p.Match {
				continue
			}
			ci := sch.ColumnIndex(p.Col)
			if ci < 0 {
				return nil, fmt.Errorf("query: column %q not in LogBlock schema", p.Col)
			}
			if !m.Columns[ci].SMA.MayMatch(p.Op, p.Val) {
				stats.BlocksSkippedBySMA++
				acc.ClearAll()
				return acc, nil
			}
		}
	}
	var scanPreds []Pred
	for _, p := range q.Preds {
		if !opts.DataSkipping {
			scanPreds = append(scanPreds, p)
			continue
		}
		bs, used, err := indexLookup(r, p, stats)
		if err != nil {
			return nil, err
		}
		if used {
			acc.And(bs)
			if !acc.Any() {
				return acc, nil
			}
			if needVerify(sch, p) {
				if err := refVerifyScan(r, p, acc, opts, stats); err != nil {
					return nil, err
				}
				if !acc.Any() {
					return acc, nil
				}
			}
			continue
		}
		scanPreds = append(scanPreds, p)
	}
	for _, p := range scanPreds {
		if err := refVerifyScan(r, p, acc, opts, stats); err != nil {
			return nil, err
		}
		if !acc.Any() {
			return acc, nil
		}
	}
	stats.RowsMatched += acc.Count()
	return acc, nil
}

// randomDataset builds a random schema + rows + reader.
func randomDataset(t *testing.T, rng *rand.Rand) (*logblock.Reader, []schema.Row) {
	t.Helper()
	intIndexes := []schema.IndexKind{schema.IndexNone, schema.IndexBKD}
	strIndexes := []schema.IndexKind{schema.IndexNone, schema.IndexInverted}
	sch := &schema.Schema{
		Name: "prop",
		Columns: []schema.Column{
			{Name: "tenant_id", Type: schema.Int64, Index: schema.IndexNone},
			{Name: "ts", Type: schema.Int64, Index: intIndexes[rng.Intn(2)]},
			{Name: "code", Type: schema.Int64, Index: intIndexes[rng.Intn(2)]},
			{Name: "api", Type: schema.String, Index: strIndexes[rng.Intn(2)]},
			{Name: "msg", Type: schema.String, Index: strIndexes[rng.Intn(2)]},
		},
		TenantCol: "tenant_id",
		TimeCol:   "ts",
	}
	vocab := []string{"get user", "put object", "delete bucket", "list keys", "auth denied", "timeout waiting upstream"}
	rows := make([]schema.Row, 1+rng.Intn(500))
	for i := range rows {
		rows[i] = schema.Row{
			schema.IntValue(7),        // builders pack one tenant per LogBlock
			schema.IntValue(int64(i)), // time-ordered
			schema.IntValue(int64(rng.Intn(20) - 5)),
			schema.StringValue(vocab[rng.Intn(3)]),
			schema.StringValue(fmt.Sprintf("%s seq %d", vocab[rng.Intn(len(vocab))], rng.Intn(50))),
		}
	}
	built, err := logblock.Build(sch, rows, logblock.BuildOptions{BlockRows: 16 + rng.Intn(300)})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := built.Pack()
	if err != nil {
		t.Fatal(err)
	}
	r, err := logblock.OpenReader(logblock.BytesFetcher(packed))
	if err != nil {
		t.Fatal(err)
	}
	return r, rows
}

// randomPred draws a predicate: comparisons on int and string columns
// (sometimes out of range, sometimes kind-mismatched) and MATCH queries
// with terms and prefixes.
func randomPred(rng *rand.Rand) Pred {
	ops := []sma.Op{sma.EQ, sma.NE, sma.LT, sma.LE, sma.GT, sma.GE}
	switch rng.Intn(6) {
	case 0: // int comparison in/around range
		col := []string{"ts", "code", "tenant_id"}[rng.Intn(3)]
		return Pred{Col: col, Op: ops[rng.Intn(len(ops))], Val: schema.IntValue(int64(rng.Intn(40) - 10))}
	case 1: // int comparison far out of range: SMA refutes
		return Pred{Col: "code", Op: ops[rng.Intn(len(ops))], Val: schema.IntValue(int64(1000 + rng.Intn(100)))}
	case 2: // string comparison
		vals := []string{"get user", "put object", "delete bucket", "zzz missing"}
		return Pred{Col: "api", Op: ops[rng.Intn(len(ops))], Val: schema.StringValue(vals[rng.Intn(len(vals))])}
	case 3: // kind mismatch: never matches
		if rng.Intn(2) == 0 {
			return Pred{Col: "api", Op: ops[rng.Intn(len(ops))], Val: schema.IntValue(3)}
		}
		return Pred{Col: "code", Op: ops[rng.Intn(len(ops))], Val: schema.StringValue("get user")}
	case 4: // MATCH terms
		terms := [][]string{{"timeout"}, {"auth", "denied"}, {"seq"}, {"nosuchtoken"}}
		return Pred{Col: "msg", Match: true, Terms: terms[rng.Intn(len(terms))]}
	default: // MATCH with a prefix
		return Pred{Col: "msg", Match: true, Terms: []string{"seq"}, Prefixes: []string{[]string{"time", "de", "up"}[rng.Intn(3)]}}
	}
}

func bitsetsEqual(a, b *bitutil.Bitset) bool {
	if a.Len() != b.Len() || a.Count() != b.Count() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Test(i) != b.Test(i) {
			return false
		}
	}
	return true
}

func TestMatchBlockPropertyVsScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		r, rows := randomDataset(t, rng)
		q := &Query{Table: "prop", Star: true}
		for n := rng.Intn(4); n > 0; n-- {
			q.Preds = append(q.Preds, randomPred(rng))
		}
		for _, skipping := range []bool{true, false} {
			opts := ExecOptions{DataSkipping: skipping}
			var vecStats, refStats ExecStats
			got, err := MatchBlock(r, q, opts, &vecStats)
			if err != nil {
				t.Fatalf("trial %d skipping=%v: MatchBlock: %v", trial, skipping, err)
			}
			want, err := refMatchBlock(r, q, opts, &refStats)
			if err != nil {
				t.Fatalf("trial %d skipping=%v: reference: %v", trial, skipping, err)
			}
			if !bitsetsEqual(got, want) {
				t.Fatalf("trial %d skipping=%v: match sets differ (%d vs %d rows)\nquery: %s",
					trial, skipping, got.Count(), want.Count(), q)
			}
			if vecStats != refStats {
				t.Fatalf("trial %d skipping=%v: stats differ\nvectorized: %+v\nreference:  %+v\nquery: %s",
					trial, skipping, vecStats, refStats, q)
			}
			// Cross-check against ground truth: every row evaluated with
			// the scalar Pred.EvalRow over the original input rows.
			sch := r.Meta.Schema
			for i, row := range rows {
				wantRow := true
				for _, p := range q.Preds {
					if !p.EvalRow(row[sch.ColumnIndex(p.Col)]) {
						wantRow = false
						break
					}
				}
				// With skipping on, MATCH hits resolved purely through the
				// inverted index follow analyzer semantics, which EvalRow
				// mirrors; both paths must agree with the truth.
				if got.Test(i) != wantRow {
					t.Fatalf("trial %d skipping=%v row %d: matched=%v want %v\nrow: %v\nquery: %s",
						trial, skipping, i, got.Test(i), wantRow, row, q)
				}
			}
		}
	}
}
