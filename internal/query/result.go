package query

import (
	"fmt"
	"sort"

	"logstore/internal/schema"
)

// GroupCount is one GROUP BY bucket.
type GroupCount struct {
	Key   schema.Value
	Count int64
}

// Result is a (partial or final) query result. Partial results from
// shards and LogBlocks merge associatively; Finalize applies ordering
// and limits once at the broker.
type Result struct {
	Columns []string
	Rows    []schema.Row
	Count   int64
	Groups  []GroupCount
	Stats   ExecStats
}

// NewResult returns an empty result shaped for the query.
func NewResult(q *Query, sch *schema.Schema) *Result {
	r := &Result{}
	switch {
	case q.CountStar && q.GroupBy != "":
		r.Columns = []string{q.GroupBy, "count"}
	case q.CountStar:
		r.Columns = []string{"count"}
	case q.Star:
		for _, c := range sch.Columns {
			r.Columns = append(r.Columns, c.Name)
		}
	default:
		r.Columns = append(r.Columns, q.Select...)
	}
	return r
}

// AddRow folds one matched, projected row into the result according to
// the query shape.
func (r *Result) AddRow(q *Query, row schema.Row) {
	switch {
	case q.CountStar && q.GroupBy != "":
		// Row is projected to [groupKey].
		r.addGroup(row[0], 1)
	case q.CountStar:
		r.Count++
	default:
		r.Rows = append(r.Rows, row)
	}
}

func (r *Result) addGroup(key schema.Value, n int64) {
	for i := range r.Groups {
		if r.Groups[i].Key.Equal(key) {
			r.Groups[i].Count += n
			return
		}
	}
	r.Groups = append(r.Groups, GroupCount{Key: key, Count: n})
}

// Merge folds another partial result in.
func (r *Result) Merge(o *Result) {
	if o == nil {
		return
	}
	if len(r.Columns) == 0 {
		r.Columns = o.Columns
	}
	r.Rows = append(r.Rows, o.Rows...)
	r.Count += o.Count
	for _, g := range o.Groups {
		r.addGroup(g.Key, g.Count)
	}
	r.Stats.Add(o.Stats)
}

// Finalize applies ORDER BY and LIMIT, producing the client-visible
// result. Ordering supports "count" (for GROUP BY results) and any
// selected column.
func (r *Result) Finalize(q *Query) error {
	if q.GroupBy != "" {
		if q.OrderBy == "count" || q.OrderBy == "" {
			sort.SliceStable(r.Groups, func(i, j int) bool {
				if q.Desc {
					return r.Groups[i].Count > r.Groups[j].Count
				}
				return r.Groups[i].Count < r.Groups[j].Count
			})
		} else if q.OrderBy == q.GroupBy {
			sort.SliceStable(r.Groups, func(i, j int) bool {
				c := r.Groups[i].Key.Compare(r.Groups[j].Key)
				if q.Desc {
					return c > 0
				}
				return c < 0
			})
		} else {
			return fmt.Errorf("query: ORDER BY %q not available with GROUP BY %q", q.OrderBy, q.GroupBy)
		}
		if q.Limit > 0 && len(r.Groups) > q.Limit {
			r.Groups = r.Groups[:q.Limit]
		}
		return nil
	}
	if q.OrderBy != "" && q.OrderBy != "count" {
		pos := -1
		for i, c := range r.Columns {
			if c == q.OrderBy {
				pos = i
			}
		}
		if pos < 0 {
			return fmt.Errorf("query: ORDER BY column %q not in projection", q.OrderBy)
		}
		sort.SliceStable(r.Rows, func(i, j int) bool {
			c := r.Rows[i][pos].Compare(r.Rows[j][pos])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.Limit > 0 && len(r.Rows) > q.Limit {
		r.Rows = r.Rows[:q.Limit]
	}
	return nil
}
