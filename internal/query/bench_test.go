package query

import (
	"fmt"
	"testing"

	"logstore/internal/bitutil"
	"logstore/internal/index/sma"
	"logstore/internal/logblock"
	"logstore/internal/schema"
)

// Scan-path micro-benchmarks (the perf trajectory recorded in
// BENCH_scan.json by `make bench`): predicate evaluation and
// materialization over one in-memory LogBlock, exercising decompression,
// block decode, and the bitset candidate machinery without any OSS or
// cache layers in the way.

const benchRows = 64 * 1024

// benchReader builds a 64k-row request_log LogBlock and opens a reader
// over the packed bytes. Indexes are suppressed so predicate evaluation
// always takes the residual-scan path being measured.
func benchReader(tb testing.TB) *logblock.Reader {
	tb.Helper()
	sch := schema.RequestLogSchema()
	rows := make([]schema.Row, benchRows)
	apis := []string{"/v1/get", "/v1/put", "/v1/list", "/v1/delete", "/admin/stats"}
	for i := range rows {
		rows[i] = schema.Row{
			schema.IntValue(7),
			schema.IntValue(int64(1000 + i)),
			schema.StringValue(fmt.Sprintf("10.0.%d.%d", i/251%251, i%251)),
			schema.StringValue(apis[i%len(apis)]),
			schema.IntValue(int64(i * 37 % 1000)),
			schema.StringValue("false"),
			schema.StringValue(fmt.Sprintf("request %d served", i)),
		}
	}
	built, err := logblock.Build(sch, rows, logblock.BuildOptions{NoIndexes: true})
	if err != nil {
		tb.Fatal(err)
	}
	packed, err := built.Pack()
	if err != nil {
		tb.Fatal(err)
	}
	r, err := logblock.OpenReader(logblock.BytesFetcher(packed))
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

func benchQuery(preds ...Pred) *Query {
	return &Query{Table: "request_log", Star: true, Preds: preds}
}

// BenchmarkScanInt64Pred measures the int64 residual scan: one
// comparison predicate over the latency column, selecting ~half the
// rows, data skipping on (block SMAs cannot refute an interleaved
// distribution, so every column block is decoded and scanned).
func BenchmarkScanInt64Pred(b *testing.B) {
	r := benchReader(b)
	q := benchQuery(Pred{Col: "latency", Op: sma.GE, Val: schema.IntValue(500)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats ExecStats
		matched, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &stats)
		if err != nil {
			b.Fatal(err)
		}
		if c := matched.Count(); c == 0 || c == benchRows {
			b.Fatalf("degenerate match count %d", c)
		}
	}
}

// BenchmarkScanStringEq measures the string residual scan over the
// dictionary-encoded api column.
func BenchmarkScanStringEq(b *testing.B) {
	r := benchReader(b)
	q := benchQuery(Pred{Col: "api", Op: sma.EQ, Val: schema.StringValue("/v1/put")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats ExecStats
		matched, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &stats)
		if err != nil {
			b.Fatal(err)
		}
		if matched.Count() != benchRows/5 {
			b.Fatalf("unexpected match count %d", matched.Count())
		}
	}
}

// BenchmarkScanConjunction measures a two-predicate conjunction (int64
// range + string equality), the paper's retrieval-template shape.
func BenchmarkScanConjunction(b *testing.B) {
	r := benchReader(b)
	q := benchQuery(
		Pred{Col: "latency", Op: sma.GE, Val: schema.IntValue(900)},
		Pred{Col: "api", Op: sma.EQ, Val: schema.StringValue("/v1/put")},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats ExecStats
		if _, err := MatchBlock(r, q, ExecOptions{DataSkipping: true}, &stats); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMatched returns a match set selecting every stride-th row.
func benchMatched(n, stride int) *bitutil.Bitset {
	bs := bitutil.NewBitset(n)
	for i := 0; i < n; i += stride {
		bs.Set(i)
	}
	return bs
}

// BenchmarkMaterialize measures projecting two columns (one int64, one
// string) for a 1-in-16 match set.
func BenchmarkMaterialize(b *testing.B) {
	r := benchReader(b)
	matched := benchMatched(benchRows, 16)
	cols := []int{r.Meta.Schema.ColumnIndex("latency"), r.Meta.Schema.ColumnIndex("log")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Materialize(r, matched, cols)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != benchRows/16 {
			b.Fatalf("unexpected row count %d", len(rows))
		}
	}
}

// BenchmarkMaterializeSparse measures the same projection for a sparse
// (1-in-4096) match set, where skipping untouched column blocks is the
// dominant effect.
func BenchmarkMaterializeSparse(b *testing.B) {
	r := benchReader(b)
	matched := benchMatched(benchRows, 4096)
	cols := []int{r.Meta.Schema.ColumnIndex("latency"), r.Meta.Schema.ColumnIndex("log")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Materialize(r, matched, cols); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountStar measures the COUNT(*) path: match + count, no
// materialization.
func BenchmarkCountStar(b *testing.B) {
	r := benchReader(b)
	q := &Query{
		Table:     "request_log",
		CountStar: true,
		Preds:     []Pred{{Col: "latency", Op: sma.LT, Val: schema.IntValue(250)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats ExecStats
		rows, err := ExecuteBlock(r, q, ExecOptions{DataSkipping: true}, &stats)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows counted")
		}
	}
}
